#include <gtest/gtest.h>

#include "chain/arbiter.hpp"
#include "core/circuits.hpp"
#include "core/system.hpp"

namespace zkdet::chain {
namespace {

using core::build_key_circuit;
using core::commit_key;
using core::hash_key;
using crypto::Drbg;
using crypto::KeyPair;
using ff::Fr;

// One shared system (SRS + pi_k keys + contracts) for all arbiter tests.
struct ArbiterFixture : ::testing::Test {
  static core::ZkdetSystem& sys() {
    static core::ZkdetSystem s(1 << 12, 5);
    return s;
  }

  Drbg rng{7};
  KeyPair seller_keys = KeyPair::generate(rng);
  KeyPair buyer_keys = KeyPair::generate(rng);
  Address seller = sys().chain().create_account(seller_keys, 100000);
  Address buyer = sys().chain().create_account(buyer_keys, 100000);

  // Asset-key material for a fake exchange.
  Fr k = rng.random_fr();
  Fr o = rng.random_fr();
  Fr key_cm = commit_key(k, o);

  std::uint64_t lock(std::uint64_t amount, const Fr& h_v,
                     std::uint64_t timeout = 50) {
    std::uint64_t id = 0;
    const Receipt r = sys().chain().call(
        buyer_keys, "lock",
        [&](CallContext& ctx) {
          id = sys().arbiter().lock(ctx, seller, h_v, key_cm, timeout);
        },
        amount, sys().arbiter().address());
    EXPECT_TRUE(r.success) << r.error;
    return id;
  }

  std::optional<plonk::Proof> prove_key(const Fr& k_v) {
    gadgets::CircuitBuilder bld = build_key_circuit(k, o, k_v);
    const auto& keys = sys().keys_for("pi_k", bld.cs());
    return plonk::prove(keys.pk, bld.cs(), sys().srs(), bld.witness(), rng);
  }
};

TEST_F(ArbiterFixture, HonestSettleTransfersPayment) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(700, hash_key(k_v));
  const std::uint64_t seller_before = sys().chain().balance(seller);
  auto proof = prove_key(k_v);
  ASSERT_TRUE(proof);
  const Fr k_c = k + k_v;
  const Receipt r = sys().chain().call(
      seller_keys, "settle", [&](CallContext& ctx) {
        sys().arbiter().settle(ctx, id, k_c, *proof);
      });
  EXPECT_TRUE(r.success) << r.error;
  EXPECT_EQ(sys().chain().balance(seller), seller_before + 700);
  const auto info = sys().arbiter().exchange(id);
  EXPECT_EQ(info->state, ExchangeState::kSettled);
  EXPECT_EQ(info->k_c, k_c);  // buyer reads k_c off-chain
  // the raw key never appears in the exchange record
  EXPECT_NE(info->k_c, k);
}

TEST_F(ArbiterFixture, SettleWithWrongKcRejected) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(500, hash_key(k_v));
  auto proof = prove_key(k_v);
  ASSERT_TRUE(proof);
  const Receipt r = sys().chain().call(
      seller_keys, "settle-bad", [&](CallContext& ctx) {
        sys().arbiter().settle(ctx, id, k + k_v + Fr::one(), *proof);
      });
  EXPECT_FALSE(r.success);
  EXPECT_EQ(sys().arbiter().exchange(id)->state, ExchangeState::kLocked);
}

TEST_F(ArbiterFixture, SettleWithForeignKeyRejected) {
  // A seller who does not know the committed key cannot settle: the
  // proof is generated for a different key and fails against c.
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(500, hash_key(k_v));
  const Fr wrong_k = rng.random_fr();
  gadgets::CircuitBuilder bld = build_key_circuit(wrong_k, o, k_v);
  const auto& keys = sys().keys_for("pi_k", bld.cs());
  auto proof = plonk::prove(keys.pk, bld.cs(), sys().srs(), bld.witness(), rng);
  ASSERT_TRUE(proof);
  const Receipt r = sys().chain().call(
      seller_keys, "settle-foreign", [&](CallContext& ctx) {
        sys().arbiter().settle(ctx, id, wrong_k + k_v, *proof);
      });
  EXPECT_FALSE(r.success);  // public input c mismatches the proof
}

TEST_F(ArbiterFixture, OnlySellerMaySettle) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(500, hash_key(k_v));
  auto proof = prove_key(k_v);
  const Receipt r = sys().chain().call(
      buyer_keys, "settle-as-buyer", [&](CallContext& ctx) {
        sys().arbiter().settle(ctx, id, k + k_v, *proof);
      });
  EXPECT_FALSE(r.success);
}

TEST_F(ArbiterFixture, RefundAfterDeadline) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(300, hash_key(k_v), /*timeout=*/3);
  const std::uint64_t buyer_after_lock = sys().chain().balance(buyer);
  // too early
  Receipt r = sys().chain().call(buyer_keys, "refund-early",
                                 [&](CallContext& ctx) {
                                   sys().arbiter().refund(ctx, id);
                                 });
  EXPECT_FALSE(r.success);
  sys().chain().advance_blocks(5);
  r = sys().chain().call(buyer_keys, "refund", [&](CallContext& ctx) {
    sys().arbiter().refund(ctx, id);
  });
  EXPECT_TRUE(r.success) << r.error;
  EXPECT_EQ(sys().chain().balance(buyer), buyer_after_lock + 300);
  EXPECT_EQ(sys().arbiter().exchange(id)->state, ExchangeState::kRefunded);
}

TEST_F(ArbiterFixture, RefundDeadlineIsStrictlyExclusive) {
  // The contract requires block_height > deadline: a refund one block
  // before and one exactly at the deadline must both fail; the first
  // block past it succeeds. Each call() seals a block, so the two
  // rejected attempts advance the chain to the boundary by themselves.
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(250, hash_key(k_v), /*timeout=*/6);
  const std::uint64_t deadline = sys().arbiter().exchange(id)->deadline;
  const std::uint64_t escrowed = sys().chain().balance(buyer);

  ASSERT_LE(sys().chain().height(), deadline - 1);
  sys().chain().advance_blocks(deadline - 1 - sys().chain().height());

  // height == deadline - 1: one block early.
  Receipt r = sys().chain().call(buyer_keys, "refund-minus-1",
                                 [&](CallContext& ctx) {
                                   sys().arbiter().refund(ctx, id);
                                 });
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.error, "revert: deadline not reached");

  // height == deadline: exactly at the deadline, still too early.
  ASSERT_EQ(sys().chain().height(), deadline);
  r = sys().chain().call(buyer_keys, "refund-at-deadline",
                         [&](CallContext& ctx) {
                           sys().arbiter().refund(ctx, id);
                         });
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.error, "revert: deadline not reached");
  EXPECT_EQ(sys().arbiter().exchange(id)->state, ExchangeState::kLocked);
  EXPECT_EQ(sys().chain().balance(buyer), escrowed);

  // height == deadline + 1: first block past the deadline.
  ASSERT_EQ(sys().chain().height(), deadline + 1);
  r = sys().chain().call(buyer_keys, "refund-plus-1", [&](CallContext& ctx) {
    sys().arbiter().refund(ctx, id);
  });
  EXPECT_TRUE(r.success) << r.error;
  EXPECT_EQ(sys().chain().balance(buyer), escrowed + 250);
  EXPECT_EQ(sys().arbiter().exchange(id)->state, ExchangeState::kRefunded);
}

TEST_F(ArbiterFixture, DoubleSettleRejected) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(600, hash_key(k_v));
  auto proof = prove_key(k_v);
  ASSERT_TRUE(proof);
  const Fr k_c = k + k_v;
  Receipt r = sys().chain().call(seller_keys, "settle-1",
                                 [&](CallContext& ctx) {
                                   sys().arbiter().settle(ctx, id, k_c, *proof);
                                 });
  ASSERT_TRUE(r.success) << r.error;
  const std::uint64_t seller_after = sys().chain().balance(seller);
  // Replaying the very same valid settle must not pay out again.
  r = sys().chain().call(seller_keys, "settle-2", [&](CallContext& ctx) {
    sys().arbiter().settle(ctx, id, k_c, *proof);
  });
  EXPECT_FALSE(r.success);
  EXPECT_EQ(sys().chain().balance(seller), seller_after);
  EXPECT_EQ(sys().arbiter().exchange(id)->state, ExchangeState::kSettled);
}

TEST_F(ArbiterFixture, DoubleRefundRejected) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(300, hash_key(k_v), /*timeout=*/1);
  sys().chain().advance_blocks(3);
  Receipt r = sys().chain().call(buyer_keys, "refund-1",
                                 [&](CallContext& ctx) {
                                   sys().arbiter().refund(ctx, id);
                                 });
  ASSERT_TRUE(r.success) << r.error;
  const std::uint64_t buyer_after = sys().chain().balance(buyer);
  r = sys().chain().call(buyer_keys, "refund-2", [&](CallContext& ctx) {
    sys().arbiter().refund(ctx, id);
  });
  EXPECT_FALSE(r.success);  // kRefunded is terminal
  EXPECT_EQ(sys().chain().balance(buyer), buyer_after);
}

TEST_F(ArbiterFixture, RefundAfterSettleRejected) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(400, hash_key(k_v), /*timeout=*/1);
  auto proof = prove_key(k_v);
  ASSERT_TRUE(proof);
  Receipt r = sys().chain().call(seller_keys, "settle",
                                 [&](CallContext& ctx) {
                                   sys().arbiter().settle(ctx, id, k + k_v,
                                                          *proof);
                                 });
  ASSERT_TRUE(r.success) << r.error;
  // Even long past the deadline a settled exchange cannot be refunded.
  sys().chain().advance_blocks(5);
  const std::uint64_t buyer_after = sys().chain().balance(buyer);
  r = sys().chain().call(buyer_keys, "refund-after-settle",
                         [&](CallContext& ctx) {
                           sys().arbiter().refund(ctx, id);
                         });
  EXPECT_FALSE(r.success);
  EXPECT_EQ(sys().chain().balance(buyer), buyer_after);
  EXPECT_EQ(sys().arbiter().exchange(id)->state, ExchangeState::kSettled);
}

TEST_F(ArbiterFixture, RefundOnlyByBuyer) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(300, hash_key(k_v), 1);
  sys().chain().advance_blocks(3);
  const Receipt r = sys().chain().call(
      seller_keys, "refund-as-seller",
      [&](CallContext& ctx) { sys().arbiter().refund(ctx, id); });
  EXPECT_FALSE(r.success);
}

TEST_F(ArbiterFixture, SettleAfterRefundRejected) {
  const Fr k_v = rng.random_fr();
  const std::uint64_t id = lock(300, hash_key(k_v), 1);
  sys().chain().advance_blocks(3);
  sys().chain().call(buyer_keys, "refund", [&](CallContext& ctx) {
    sys().arbiter().refund(ctx, id);
  });
  auto proof = prove_key(k_v);
  const Receipt r = sys().chain().call(
      seller_keys, "settle-late", [&](CallContext& ctx) {
        sys().arbiter().settle(ctx, id, k + k_v, *proof);
      });
  EXPECT_FALSE(r.success);
}

TEST_F(ArbiterFixture, LockRequiresPayment) {
  const Receipt r = sys().chain().call(
      buyer_keys, "lock-zero", [&](CallContext& ctx) {
        sys().arbiter().lock(ctx, seller, Fr::one(), key_cm, 10);
      });
  EXPECT_FALSE(r.success);
}

TEST_F(ArbiterFixture, ZkcpOpenLeaksKey) {
  const Fr h = crypto::poseidon_hash({k}, core::kKeyHashTag);
  std::uint64_t id = 0;
  Receipt r = sys().chain().call(
      buyer_keys, "zkcp-lock",
      [&](CallContext& ctx) {
        id = sys().zkcp_arbiter().lock(ctx, seller, h);
      },
      400, sys().zkcp_arbiter().address());
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_FALSE(sys().zkcp_arbiter().leaked_key(id).has_value());
  r = sys().chain().call(seller_keys, "zkcp-open", [&](CallContext& ctx) {
    sys().zkcp_arbiter().open(ctx, id, k);
  });
  ASSERT_TRUE(r.success) << r.error;
  // the key is now public chain state — the ZKCP flaw
  const auto leaked = sys().zkcp_arbiter().leaked_key(id);
  ASSERT_TRUE(leaked.has_value());
  EXPECT_EQ(*leaked, k);
}

TEST_F(ArbiterFixture, ZkcpOpenWithWrongKeyRejected) {
  const Fr h = crypto::poseidon_hash({k}, core::kKeyHashTag);
  std::uint64_t id = 0;
  sys().chain().call(
      buyer_keys, "zkcp-lock",
      [&](CallContext& ctx) {
        id = sys().zkcp_arbiter().lock(ctx, seller, h);
      },
      400, sys().zkcp_arbiter().address());
  const Receipt r = sys().chain().call(
      seller_keys, "zkcp-open-bad", [&](CallContext& ctx) {
        sys().zkcp_arbiter().open(ctx, id, k + Fr::one());
      });
  EXPECT_FALSE(r.success);
}

TEST_F(ArbiterFixture, VerifierContractChargesGas) {
  const Fr k_v = rng.random_fr();
  gadgets::CircuitBuilder bld = build_key_circuit(k, o, k_v);
  const auto& keys = sys().keys_for("pi_k", bld.cs());
  auto proof = plonk::prove(keys.pk, bld.cs(), sys().srs(), bld.witness(), rng);
  ASSERT_TRUE(proof);
  std::uint64_t gas = 0;
  bool ok = false;
  sys().chain().call(seller_keys, "verify", [&](CallContext& ctx) {
    const std::uint64_t g0 = ctx.gas().used();
    ok = sys().key_verifier().verify(
        ctx, {k + k_v, commit_key(k, o), hash_key(k_v)}, *proof);
    gas = ctx.gas().used() - g0;
  });
  EXPECT_TRUE(ok);
  // EIP-1108 floor: pairing (45k + 2*34k) + 18 muls (108k)
  EXPECT_GT(gas, 200'000u);
  EXPECT_LT(gas, 400'000u);
}

}  // namespace
}  // namespace zkdet::chain
