#include <gtest/gtest.h>

#include "chain/auction.hpp"
#include "chain/chain.hpp"
#include "chain/nft.hpp"

namespace zkdet::chain {
namespace {

using crypto::Drbg;
using crypto::KeyPair;
using ff::Fr;

struct ChainFixture : ::testing::Test {
  Drbg rng{1};
  Chain chain;
  KeyPair alice_keys = KeyPair::generate(rng);
  KeyPair bob_keys = KeyPair::generate(rng);
  Address alice = chain.create_account(alice_keys, 1000);
  Address bob = chain.create_account(bob_keys, 500);
};

TEST_F(ChainFixture, AccountsAndBalances) {
  EXPECT_EQ(chain.balance(alice), 1000u);
  EXPECT_EQ(chain.balance(bob), 500u);
  EXPECT_EQ(chain.balance("0xnobody"), 0u);
}

TEST_F(ChainFixture, TransferMovesFunds) {
  chain.transfer(alice, bob, 100);
  EXPECT_EQ(chain.balance(alice), 900u);
  EXPECT_EQ(chain.balance(bob), 600u);
}

TEST_F(ChainFixture, TransferInsufficientThrows) {
  EXPECT_THROW(chain.transfer(bob, alice, 501), Revert);
}

TEST_F(ChainFixture, CallChargesBaseGas) {
  const Receipt r = chain.call(alice_keys, "noop", [](CallContext&) {});
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.gas_used, chain.gas_schedule().tx_base);
}

TEST_F(ChainFixture, UnknownSenderRejected) {
  const KeyPair stranger = KeyPair::generate(rng);
  const Receipt r = chain.call(stranger, "noop", [](CallContext&) {});
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.error.find("unknown sender"), std::string::npos);
}

TEST_F(ChainFixture, RevertReportsReason) {
  const Receipt r = chain.call(alice_keys, "fail", [](CallContext& ctx) {
    ctx.require(false, "nope");
  });
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.error.find("nope"), std::string::npos);
}

TEST_F(ChainFixture, ValueTransferEscrowsAndRefundsOnRevert) {
  Receipt* ignored = nullptr;
  DataNft& nft = chain.deploy<DataNft>(alice_keys, ignored);
  const std::uint64_t before = chain.balance(alice);
  const Receipt r = chain.call(
      alice_keys, "pay-and-fail",
      [](CallContext& ctx) { ctx.require(false, "bad"); }, 100,
      nft.address());
  EXPECT_FALSE(r.success);
  EXPECT_EQ(chain.balance(alice), before);  // escrow rolled back
}

TEST_F(ChainFixture, OutOfGasHandled) {
  const Receipt r = chain.call(
      alice_keys, "gas-hog",
      [](CallContext& ctx) { ctx.gas().charge(1'000'000'000); }, 0, {},
      /*gas_limit=*/100'000);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.error, "out of gas");
}

TEST_F(ChainFixture, BlocksLinkAndValidate) {
  chain.call(alice_keys, "a", [](CallContext&) {});
  chain.call(bob_keys, "b", [](CallContext&) {});
  chain.advance_blocks(3);
  EXPECT_TRUE(chain.validate_chain());
  EXPECT_GE(chain.blocks().size(), 6u);
  for (std::size_t i = 1; i < chain.blocks().size(); ++i) {
    EXPECT_EQ(chain.blocks()[i].prev_hash, chain.blocks()[i - 1].hash);
  }
}

// Regression: block_hash used to cover only (sender, description), so a
// node could rewrite a receipt's outcome — gas, success flag, events,
// even the signature — without breaking validate_chain(). The hash now
// covers the codec-serialized TxRecord, so every mutation below must be
// detected.
TEST_F(ChainFixture, TamperedReceiptOutcomeBreaksValidation) {
  chain.call(alice_keys, "tamper-target", [](CallContext& ctx) {
    ctx.emit(Event{"Ping", {{"k", "v"}}});
  });
  ASSERT_TRUE(chain.validate_chain());
  auto& blocks = const_cast<std::vector<Block>&>(chain.blocks());
  TxRecord& tx = blocks.back().txs.at(0);

  const std::uint64_t gas = tx.gas_used;
  tx.gas_used += 1;
  EXPECT_FALSE(chain.validate_chain()) << "gas_used tamper undetected";
  tx.gas_used = gas;

  tx.success = !tx.success;
  EXPECT_FALSE(chain.validate_chain()) << "success-flag tamper undetected";
  tx.success = !tx.success;

  ASSERT_FALSE(tx.events.empty());
  const std::string v = tx.events[0].fields.at(0).second;
  tx.events[0].fields.at(0).second = "forged";
  EXPECT_FALSE(chain.validate_chain()) << "event tamper undetected";
  tx.events[0].fields.at(0).second = v;

  ASSERT_TRUE(tx.has_sig);
  tx.has_sig = false;
  EXPECT_FALSE(chain.validate_chain()) << "signature strip undetected";
  tx.has_sig = true;

  EXPECT_TRUE(chain.validate_chain()) << "restore should validate again";
}

TEST_F(ChainFixture, EventsRecorded) {
  const Receipt r = chain.call(alice_keys, "emit", [](CallContext& ctx) {
    ctx.emit(Event{"Ping", {{"k", "v"}}});
  });
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].name, "Ping");
  EXPECT_GT(r.gas_used, chain.gas_schedule().tx_base);  // log gas charged
}

TEST_F(ChainFixture, MeteredStoreGasSemantics) {
  DataNft& nft = chain.deploy<DataNft>(alice_keys, nullptr);
  (void)nft;
  // first set = sstore_set, second = sstore_update, read = sload
  struct Probe : Contract {
    Probe() : Contract("Probe", 10) {}
    using Contract::store;
  };
  Probe& probe = chain.deploy<Probe>(alice_keys, nullptr);
  std::uint64_t first = 0, second = 0, read = 0;
  chain.call(alice_keys, "s1", [&](CallContext& ctx) {
    const std::uint64_t g0 = ctx.gas().used();
    probe.store().set(ctx, "k", Fr::one());
    first = ctx.gas().used() - g0;
    probe.store().set(ctx, "k", Fr::from_u64(2));
    second = ctx.gas().used() - g0 - first;
    const std::uint64_t g1 = ctx.gas().used();
    (void)probe.store().get(ctx, "k");
    read = ctx.gas().used() - g1;
  });
  EXPECT_EQ(first, chain.gas_schedule().sstore_set);
  EXPECT_EQ(second, chain.gas_schedule().sstore_update);
  EXPECT_EQ(read, chain.gas_schedule().sload);
}

TEST_F(ChainFixture, DeploymentGasFollowsCodeSize) {
  Receipt receipt;
  chain.deploy<DataNft>(alice_keys, &receipt);
  const auto& g = chain.gas_schedule();
  EXPECT_EQ(receipt.gas_used, g.tx_base + g.create_base + g.create_per_byte * 4839);
}

// --- NFT contract ---

struct NftFixture : ChainFixture {
  DataNft& nft = chain.deploy<DataNft>(alice_keys, nullptr);

  std::uint64_t mint_as(const KeyPair& who, std::uint64_t tag) {
    std::uint64_t id = 0;
    chain.call(who, "mint", [&](CallContext& ctx) {
      id = nft.mint(ctx, Fr::from_u64(tag), Fr::from_u64(tag + 1),
                    Fr::from_u64(tag + 2));
    });
    return id;
  }
};

TEST_F(NftFixture, MintAssignsSequentialIdsAndOwnership) {
  const std::uint64_t t1 = mint_as(alice_keys, 100);
  const std::uint64_t t2 = mint_as(bob_keys, 200);
  EXPECT_EQ(t1, 1u);
  EXPECT_EQ(t2, 2u);
  EXPECT_EQ(nft.token(t1)->owner, alice);
  EXPECT_EQ(nft.token(t2)->owner, bob);
  EXPECT_EQ(nft.token(t1)->uri, Fr::from_u64(100));
  EXPECT_EQ(nft.token(t1)->data_commitment, Fr::from_u64(101));
  EXPECT_EQ(nft.total_minted(), 2u);
}

TEST_F(NftFixture, TransferByOwner) {
  const std::uint64_t id = mint_as(alice_keys, 1);
  const Receipt r = chain.call(alice_keys, "xfer", [&](CallContext& ctx) {
    nft.transfer_from(ctx, alice, bob, id);
  });
  EXPECT_TRUE(r.success);
  EXPECT_EQ(nft.token(id)->owner, bob);
}

TEST_F(NftFixture, TransferByStrangerRejected) {
  const std::uint64_t id = mint_as(alice_keys, 1);
  const Receipt r = chain.call(bob_keys, "steal", [&](CallContext& ctx) {
    nft.transfer_from(ctx, alice, bob, id);
  });
  EXPECT_FALSE(r.success);
  EXPECT_EQ(nft.token(id)->owner, alice);
}

TEST_F(NftFixture, ApprovedOperatorMayTransfer) {
  const std::uint64_t id = mint_as(alice_keys, 1);
  chain.call(alice_keys, "approve", [&](CallContext& ctx) {
    nft.approve(ctx, bob, id);
  });
  const Receipt r = chain.call(bob_keys, "xfer", [&](CallContext& ctx) {
    nft.transfer_from(ctx, alice, bob, id);
  });
  EXPECT_TRUE(r.success);
  EXPECT_EQ(nft.token(id)->owner, bob);
  // approval cleared after transfer
  const Receipt r2 = chain.call(bob_keys, "xfer2", [&](CallContext& ctx) {
    nft.transfer_from(ctx, bob, alice, id);
  });
  EXPECT_TRUE(r2.success);  // bob owns it now, fine
}

TEST_F(NftFixture, BurnRemovesToken) {
  const std::uint64_t id = mint_as(alice_keys, 1);
  const Receipt r = chain.call(alice_keys, "burn", [&](CallContext& ctx) {
    nft.burn(ctx, id);
  });
  EXPECT_TRUE(r.success);
  EXPECT_FALSE(nft.exists(id));
  // burning again fails
  const Receipt r2 = chain.call(alice_keys, "burn2", [&](CallContext& ctx) {
    nft.burn(ctx, id);
  });
  EXPECT_FALSE(r2.success);
}

TEST_F(NftFixture, BurnByNonOwnerRejected) {
  const std::uint64_t id = mint_as(alice_keys, 1);
  const Receipt r = chain.call(bob_keys, "burn", [&](CallContext& ctx) {
    nft.burn(ctx, id);
  });
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(nft.exists(id));
}

TEST_F(NftFixture, DerivedTokensTrackProvenance) {
  const std::uint64_t a = mint_as(alice_keys, 1);
  const std::uint64_t b = mint_as(alice_keys, 2);
  std::uint64_t agg = 0;
  chain.call(alice_keys, "agg", [&](CallContext& ctx) {
    agg = nft.mint_derived(ctx, Fr::from_u64(3), Fr::from_u64(4),
                           Fr::from_u64(5), Formula::kAggregation, {a, b});
  });
  ASSERT_NE(agg, 0u);
  EXPECT_EQ(nft.token(agg)->formula, Formula::kAggregation);
  EXPECT_EQ(nft.token(agg)->prev_ids, (std::vector<std::uint64_t>{a, b}));
  std::uint64_t proc = 0;
  chain.call(alice_keys, "proc", [&](CallContext& ctx) {
    proc = nft.mint_derived(ctx, Fr::from_u64(6), Fr::from_u64(7),
                            Fr::from_u64(8), Formula::kProcessing, {agg});
  });
  const auto anc = nft.provenance(proc);
  EXPECT_EQ(anc, (std::vector<std::uint64_t>{a, b, agg}));
}

TEST_F(NftFixture, DerivedFromForeignTokenRejected) {
  const std::uint64_t a = mint_as(alice_keys, 1);
  const Receipt r = chain.call(bob_keys, "derive", [&](CallContext& ctx) {
    nft.mint_derived(ctx, Fr::from_u64(2), Fr::from_u64(3), Fr::from_u64(4),
                     Formula::kDuplication, {a});
  });
  EXPECT_FALSE(r.success);
}

TEST_F(NftFixture, DerivedFromMissingParentRejected) {
  const Receipt r = chain.call(alice_keys, "derive", [&](CallContext& ctx) {
    nft.mint_derived(ctx, Fr::from_u64(2), Fr::from_u64(3), Fr::from_u64(4),
                     Formula::kDuplication, {999});
  });
  EXPECT_FALSE(r.success);
}

// --- Clock auction ---

struct AuctionFixture : NftFixture {
  ClockAuction& auction = chain.deploy<ClockAuction>(alice_keys, nullptr, nft);

  std::uint64_t list_token(std::uint64_t token, std::uint64_t start,
                           std::uint64_t floor, std::uint64_t decay) {
    chain.call(alice_keys, "approve", [&](CallContext& ctx) {
      nft.approve(ctx, auction.address(), token);
    });
    std::uint64_t id = 0;
    chain.call(alice_keys, "create-auction", [&](CallContext& ctx) {
      id = auction.create(ctx, token, start, floor, decay);
    });
    return id;
  }
};

TEST_F(AuctionFixture, PriceDecaysToFloor) {
  const std::uint64_t token = mint_as(alice_keys, 1);
  const std::uint64_t id = list_token(token, 100, 40, 10);
  ASSERT_NE(id, 0u);
  const std::uint64_t h0 = auction.auction(id)->start_block;
  EXPECT_EQ(auction.current_price(id, h0), 100u);
  EXPECT_EQ(auction.current_price(id, h0 + 3), 70u);
  EXPECT_EQ(auction.current_price(id, h0 + 100), 40u);  // floored
}

TEST_F(AuctionFixture, EscrowsTokenOnCreate) {
  const std::uint64_t token = mint_as(alice_keys, 1);
  list_token(token, 100, 40, 10);
  EXPECT_EQ(nft.token(token)->owner, auction.address());
}

TEST_F(AuctionFixture, BidSettlesAtClockPrice) {
  const std::uint64_t token = mint_as(alice_keys, 1);
  const std::uint64_t id = list_token(token, 100, 40, 10);
  chain.advance_blocks(2);
  const std::uint64_t alice_before = chain.balance(alice);
  const std::uint64_t bob_before = chain.balance(bob);
  const Receipt r = chain.call(
      bob_keys, "bid",
      [&](CallContext& ctx) { auction.bid(ctx, id); }, 100,
      auction.address());
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(nft.token(token)->owner, bob);
  const auto info = auction.auction(id);
  EXPECT_FALSE(info->open);
  EXPECT_EQ(info->winner, bob);
  // seller received the clock price; buyer refunded the overshoot
  EXPECT_EQ(chain.balance(alice), alice_before + info->settle_price);
  EXPECT_EQ(chain.balance(bob), bob_before - info->settle_price);
}

TEST_F(AuctionFixture, UnderbidRejected) {
  const std::uint64_t token = mint_as(alice_keys, 1);
  const std::uint64_t id = list_token(token, 400, 300, 1);
  const Receipt r = chain.call(
      bob_keys, "bid",
      [&](CallContext& ctx) { auction.bid(ctx, id); }, 50, auction.address());
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(auction.auction(id)->open);
  EXPECT_EQ(chain.balance(bob), 500u);  // refunded
}

TEST_F(AuctionFixture, CancelReturnsToken) {
  const std::uint64_t token = mint_as(alice_keys, 1);
  const std::uint64_t id = list_token(token, 100, 40, 10);
  const Receipt r = chain.call(alice_keys, "cancel", [&](CallContext& ctx) {
    auction.cancel(ctx, id);
  });
  EXPECT_TRUE(r.success);
  EXPECT_EQ(nft.token(token)->owner, alice);
  EXPECT_FALSE(auction.auction(id)->open);
}

TEST_F(AuctionFixture, CancelByNonSellerRejected) {
  const std::uint64_t token = mint_as(alice_keys, 1);
  const std::uint64_t id = list_token(token, 100, 40, 10);
  const Receipt r = chain.call(bob_keys, "cancel", [&](CallContext& ctx) {
    auction.cancel(ctx, id);
  });
  EXPECT_FALSE(r.success);
}

TEST_F(AuctionFixture, BidOnClosedAuctionRejected) {
  const std::uint64_t token = mint_as(alice_keys, 1);
  const std::uint64_t id = list_token(token, 50, 40, 1);
  chain.call(
      bob_keys, "bid", [&](CallContext& ctx) { auction.bid(ctx, id); }, 50,
      auction.address());
  const Receipt r = chain.call(
      bob_keys, "bid2", [&](CallContext& ctx) { auction.bid(ctx, id); }, 50,
      auction.address());
  EXPECT_FALSE(r.success);
}

}  // namespace
}  // namespace zkdet::chain
