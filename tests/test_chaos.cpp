// Chaos harness: seeded fault schedules against the full exchange
// pipeline (storage + chain + prover + ExchangeDriver), asserting the
// paper's safety invariants under every schedule:
//
//   * every exchange terminates kSettled xor kRefunded (IV-F fairness:
//     the buyer ends with the key or the refund, never neither),
//   * funds are conserved (buyer + seller + escrow is constant, and the
//     settled/refunded amount lands with the right party),
//   * the data key k never appears in any on-chain contract slot,
//   * every injected storage corruption is detected (III-A tamper
//     evidence) and repaired when an intact replica exists.
//
// Each schedule is a pure function of its seed; a failing run prints
// the seed and can be replayed alone via
//   ZKDET_CHAOS_SEEDS=<seed> ./zkdet_chaos_tests
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <optional>

#include "check/check.hpp"
#include "core/exchange_driver.hpp"
#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/ledger.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"

namespace zkdet::core {
namespace {

using chain::ExchangeState;
using crypto::Drbg;
using crypto::KeyPair;
using fault::Schedule;
using ff::Fr;

// --- fault framework unit tests ----------------------------------------

constexpr const char kTestPoint[] = "test.point";

struct FaultFramework : ::testing::Test {
  void TearDown() override { fault::clear_all(); }
};

TEST_F(FaultFramework, DisarmedFireIsFalseAndCountsNothing) {
  EXPECT_FALSE(fault::fire(kTestPoint));
  EXPECT_EQ(fault::hits(kTestPoint), 0u);
}

TEST_F(FaultFramework, OnceFiresExactlyAtTheRequestedHit) {
  fault::inject(kTestPoint, Schedule::once(3));
  EXPECT_FALSE(fault::fire(kTestPoint));
  EXPECT_FALSE(fault::fire(kTestPoint));
  EXPECT_TRUE(fault::fire(kTestPoint));
  EXPECT_FALSE(fault::fire(kTestPoint));
  EXPECT_EQ(fault::hits(kTestPoint), 4u);
  EXPECT_EQ(fault::failures(kTestPoint), 1u);
}

TEST_F(FaultFramework, TimesFailsAConsecutiveWindow) {
  fault::inject(kTestPoint, Schedule::times(2, 2));
  EXPECT_FALSE(fault::fire(kTestPoint));
  EXPECT_TRUE(fault::fire(kTestPoint));
  EXPECT_TRUE(fault::fire(kTestPoint));
  EXPECT_FALSE(fault::fire(kTestPoint));
  EXPECT_EQ(fault::failures(kTestPoint), 2u);
}

TEST_F(FaultFramework, ProbabilisticSequenceIsAFunctionOfTheSeed) {
  std::vector<bool> first;
  fault::inject(kTestPoint, Schedule::probability(0.5, 1234));
  for (int i = 0; i < 64; ++i) first.push_back(fault::fire(kTestPoint));
  // Reinstalling the same spec resets counters and replays identically.
  fault::inject(kTestPoint, Schedule::probability(0.5, 1234));
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(fault::fire(kTestPoint), first[static_cast<std::size_t>(i)]);
  }
  // A different seed gives a different trace (with overwhelming prob.).
  fault::inject(kTestPoint, Schedule::probability(0.5, 4321));
  std::vector<bool> other;
  for (int i = 0; i < 64; ++i) other.push_back(fault::fire(kTestPoint));
  EXPECT_NE(first, other);
}

TEST_F(FaultFramework, SpecStringInstallsAndRejectsMalformedEntries) {
  EXPECT_EQ(fault::install_spec("a.b=once;c.d=times:3@2;e.f=prob:0.25:7"), 3u);
  EXPECT_TRUE(fault::fire("a.b"));
  EXPECT_FALSE(fault::fire("a.b"));
  EXPECT_FALSE(fault::fire("c.d"));
  EXPECT_TRUE(fault::fire("c.d"));
  // Malformed entries are skipped, valid ones still install.
  EXPECT_EQ(fault::install_spec("bad;x=;=y;p.q=prob:1.5:0;ok.point=always"),
            1u);
  EXPECT_TRUE(fault::fire("ok.point"));
}

TEST_F(FaultFramework, ClearDisarms) {
  fault::inject(kTestPoint, Schedule::always());
  EXPECT_TRUE(fault::fire(kTestPoint));
  fault::clear(kTestPoint);
  EXPECT_FALSE(fault::fire(kTestPoint));
}

// --- chaos fixture ------------------------------------------------------

struct ChaosBase : ::testing::Test {
  static ZkdetSystem& sys() {
    static ZkdetSystem s(1 << 14, 23);
    return s;
  }
  static TransformationProtocol& tp() {
    static TransformationProtocol t(sys());
    return t;
  }
  static KeyPair& seller_keys() {
    static KeyPair k = [] {
      Drbg rng("chaos-seller", 1);
      KeyPair kp = KeyPair::generate(rng);
      sys().chain().create_account(kp, 1'000'000);
      return kp;
    }();
    return k;
  }
  // One published asset + offer shared by every schedule (publishing is
  // proof-heavy; the chaos target is the exchange, not the mint).
  static OwnedAsset& asset() {
    static OwnedAsset a = [] {
      std::vector<Fr> data;
      for (std::uint64_t i = 0; i < 4; ++i) {
        data.push_back(Fr::from_u64(4200 + i));
      }
      auto published = tp().publish(seller_keys(), data);
      ZKDET_CHECK(published.has_value(), "chaos fixture publish failed");
      return *published;
    }();
    return a;
  }
  static Offer& offer() {
    static Offer o = [] {
      KeySecureExchange ex(sys(), tp());
      auto made = ex.make_offer(asset(), nullptr, "any");
      ZKDET_CHECK(made.has_value(), "chaos fixture offer failed");
      return *made;
    }();
    return o;
  }

  void TearDown() override { fault::clear_all(); }
};

// Per-seed schedule: every fail-point independently gets no schedule, a
// one-shot, a short outage window, or a seeded coin — all drawn from a
// Drbg keyed by the seed, so the whole schedule replays from the seed.
void install_schedule(std::uint64_t seed) {
  Drbg rng("chaos-schedule", seed);
  const auto pick = [&](const char* point) {
    switch (rng() % 10) {
      case 0: case 1: case 2:
        break;  // healthy
      case 3: case 4:
        fault::inject(point, Schedule::once(1 + rng() % 3));
        break;
      case 5: case 6:
        fault::inject(point, Schedule::times(1 + rng() % 2, 1 + rng() % 2));
        break;
      default: {
        const double p = 0.05 + 0.01 * static_cast<double>(rng() % 20);
        fault::inject(point, Schedule::probability(p, rng()));
        break;
      }
    }
  };
  pick(fault::points::kStoragePutNode);
  pick(fault::points::kStorageFetchNode);
  pick(fault::points::kChainSubmit);
  pick(fault::points::kProverJob);
  pick(fault::points::kExchangeVerify);
  pick(fault::points::kExchangeLock);
  pick(fault::points::kExchangeSettle);
  pick(fault::points::kExchangeRecover);
  pick(fault::points::kExchangeRefund);
  // The exchange's lock/settle/refund txs ride the transaction pool
  // now, so pool admission rejections and injected optimistic-
  // concurrency aborts are part of the chaos surface. (txpool.seal.crash
  // is excluded: it simulates a process kill, which has its own
  // dedicated recovery tests in test_txpool.cpp.)
  pick(fault::points::kTxpoolAdmitFull);
  pick(fault::points::kTxpoolExecConflictAbort);
  // Every 5th seed crashes the buyer right after the lock tx lands, to
  // exercise ExchangeDriver's rebuild-from-chain recovery.
  if (seed % 5 == 0) {
    fault::inject(fault::points::kExchangeCrashAfterLock, Schedule::once());
  }
}

std::vector<std::uint64_t> chaos_seeds() {
  std::vector<std::uint64_t> seeds;
  if (const char* env = std::getenv("ZKDET_CHAOS_SEEDS");
      env != nullptr && *env != '\0') {
    std::string s(env);
    std::size_t pos = 0;
    while (pos < s.size()) {
      const auto comma = s.find(',', pos);
      const std::string tok =
          s.substr(pos, comma == std::string::npos ? std::string::npos
                                                   : comma - pos);
      if (!tok.empty()) seeds.push_back(std::strtoull(tok.c_str(), nullptr, 10));
      pos = comma == std::string::npos ? s.size() : comma + 1;
    }
    if (!seeds.empty()) return seeds;
  }
  for (std::uint64_t seed = 1; seed <= 30; ++seed) seeds.push_back(seed);
  return seeds;
}

struct ChaosExchange : ChaosBase,
                       ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(ChaosExchange, ReachesTerminalStateWithInvariantsIntact) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE("chaos seed " + std::to_string(seed) +
               " — replay: ZKDET_CHAOS_SEEDS=" + std::to_string(seed));

  // Materialize shared fixtures before arming any schedule.
  OwnedAsset& a = asset();
  Offer& o = offer();
  auto& storage = sys().storage();
  const auto* enc = tp().encryption_record(a.token_id);
  ASSERT_NE(enc, nullptr);

  // Fresh buyer per seed: balances stay auditable per schedule.
  Drbg buyer_rng("chaos-buyer", seed);
  const KeyPair buyer = KeyPair::generate(buyer_rng);
  const chain::Address buyer_addr =
      sys().chain().create_account(buyer, 100'000);
  const chain::Address seller_addr = crypto::address_of(seller_keys().pk);
  const chain::Address escrow_addr = sys().arbiter().address();

  const std::uint64_t buyer_before = sys().chain().balance(buyer_addr);
  const std::uint64_t seller_before = sys().chain().balance(seller_addr);
  const std::uint64_t escrow_before = sys().chain().balance(escrow_addr);
  const std::size_t tampered_before = storage.tamper_detections();

  // Every 3rd seed additionally tampers a ciphertext replica in place
  // (malicious node), exercising detection + repair mid-exchange.
  bool corrupted_replica = false;
  if (seed % 3 == 0) {
    for (std::size_t i = 0; i < storage.num_nodes() && !corrupted_replica;
         ++i) {
      corrupted_replica = storage.node(i).corrupt(enc->data_cid);
    }
    ASSERT_TRUE(corrupted_replica);
  }

  install_schedule(seed);

  // Every 4th seed performs a fresh put while node writes can fail,
  // exercising the fallback-placement path concurrently with the
  // exchange. Unpinned before the audit scrub: under an all-nodes-down
  // schedule the blob legitimately ends with zero replicas.
  std::optional<storage::Cid> extra_cid;
  storage::Blob extra_blob;
  if (seed % 4 == 0) {
    for (std::size_t i = 0; i < 64; ++i) {
      extra_blob.push_back(static_cast<std::uint8_t>(seed * 31 + i));
    }
    extra_cid = storage.put(extra_blob);
  }

  SessionStore store;
  ExchangeDriver::Config cfg;
  cfg.amount = 500 + seed;
  cfg.timeout_blocks = 6;
  cfg.max_attempts = 8;

  DriveReport report;
  {
    ExchangeDriver driver(sys(), tp(), store);
    report = driver.drive(buyer, seller_keys(), a, o, cfg);
  }
  if (report.status == DriveStatus::kCrashed) {
    // The buyer process died. A new driver instance (same durable
    // store) rebuilds the session from chain state and finishes.
    ExchangeDriver recovered(sys(), tp(), store);
    const auto reports = recovered.resume_all(buyer, seller_keys(), &a, cfg);
    ASSERT_EQ(reports.size(), 1u);
    report = reports[0];
    EXPECT_TRUE(report.recovered_from_crash);
  }

  // Invariant: terminal state, exactly one of settled/refunded.
  ASSERT_TRUE(report.status == DriveStatus::kSettled ||
              report.status == DriveStatus::kRefunded)
      << "non-terminal status: " << drive_status_name(report.status);

  // Disarm before auditing: the audit itself must not be fault-injected.
  fault::clear_all();

  // Invariant: funds conserved, and routed to the right party.
  const std::uint64_t buyer_after = sys().chain().balance(buyer_addr);
  const std::uint64_t seller_after = sys().chain().balance(seller_addr);
  const std::uint64_t escrow_after = sys().chain().balance(escrow_addr);
  EXPECT_EQ(buyer_before + seller_before + escrow_before,
            buyer_after + seller_after + escrow_after);
  EXPECT_EQ(escrow_after, escrow_before);  // nothing stranded in escrow
  if (report.status == DriveStatus::kSettled) {
    EXPECT_EQ(buyer_after, buyer_before - cfg.amount);
    EXPECT_EQ(seller_after, seller_before + cfg.amount);
  } else {
    EXPECT_EQ(buyer_after, buyer_before);
    EXPECT_EQ(seller_after, seller_before);
  }

  // Invariant: the data key appears in no on-chain contract slot, and
  // a settled exchange published exactly k_c = k + k_v.
  for (const auto& [slot, value] : sys().arbiter().audit_store().peek_all()) {
    EXPECT_NE(value, a.key) << "raw key leaked into chain slot " << slot;
  }
  if (report.exchange_id != 0) {
    const auto info = sys().arbiter().exchange(report.exchange_id);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->state, report.status == DriveStatus::kSettled
                               ? ExchangeState::kSettled
                               : ExchangeState::kRefunded);
    EXPECT_NE(info->k_c, a.key);
    if (report.status == DriveStatus::kSettled) {
      const auto session = store.load(info->h_v);
      ASSERT_TRUE(session.has_value());
      EXPECT_EQ(info->k_c, a.key + session->k_v);
      EXPECT_EQ(hash_key(session->k_v), info->h_v);
    }
  }

  // Invariant: a settled buyer actually holds the plaintext.
  if (report.status == DriveStatus::kSettled) {
    EXPECT_TRUE(report.data_recovered);
    EXPECT_EQ(report.data, a.plain);
  }

  // The extra blob is either fully readable or (all writes failed)
  // absent — never silently wrong. Unpin it so the audit scrub below
  // only judges the exchange's own pinned data.
  if (extra_cid) {
    if (const auto fetched = storage.get(*extra_cid)) {
      EXPECT_EQ(*fetched, extra_blob);
    }
    storage.unpin(*extra_cid);
  }

  // Invariant: injected corruption was detected, and an intact replica
  // set is restored (scrub audits without reachability faults).
  const auto scrub = storage.scrub();
  EXPECT_EQ(scrub.unrecoverable, 0u);
  if (corrupted_replica) {
    EXPECT_GT(storage.tamper_detections(), tampered_before);
    const auto blob = storage.get(enc->data_cid);
    ASSERT_TRUE(blob.has_value());
    EXPECT_EQ(storage::Cid::of(*blob), enc->data_cid);
  }

  // The chain itself stayed hash-linked through all of it.
  EXPECT_TRUE(sys().chain().validate_chain());

  if (HasFailure()) {
    std::fprintf(stderr,
                 "[chaos] FAILED seed=%llu — reproduce with "
                 "ZKDET_CHAOS_SEEDS=%llu ./zkdet_chaos_tests\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosExchange,
                         ::testing::ValuesIn(chaos_seeds()));

// --- directed driver scenarios -----------------------------------------

struct DriverScenarios : ChaosBase {};

TEST_F(DriverScenarios, CrashAfterLockRecoversViaChainLookup) {
  OwnedAsset& a = asset();
  Offer& o = offer();
  Drbg rng("driver-crash", 7);
  const KeyPair buyer = KeyPair::generate(rng);
  sys().chain().create_account(buyer, 10'000);

  SessionStore store;
  ExchangeDriver::Config cfg;
  cfg.amount = 900;

  fault::inject(fault::points::kExchangeCrashAfterLock, Schedule::once());
  DriveReport crashed;
  {
    ExchangeDriver driver(sys(), tp(), store);
    crashed = driver.drive(buyer, seller_keys(), a, o, cfg);
  }
  ASSERT_EQ(crashed.status, DriveStatus::kCrashed);
  // The persisted record predates the lock receipt: no exchange id.
  ASSERT_EQ(store.pending().size(), 1u);
  EXPECT_EQ(store.pending()[0].exchange_id, 0u);
  fault::clear_all();

  ExchangeDriver fresh(sys(), tp(), store);
  const auto reports = fresh.resume_all(buyer, seller_keys(), &a, cfg);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].status, DriveStatus::kSettled);
  EXPECT_TRUE(reports[0].recovered_from_crash);
  EXPECT_NE(reports[0].exchange_id, 0u);
  EXPECT_TRUE(reports[0].data_recovered);
  EXPECT_EQ(reports[0].data, a.plain);
  EXPECT_TRUE(store.pending().empty());
}

TEST_F(DriverScenarios, SellerGoneMeansRefundAfterDeadline) {
  OwnedAsset& a = asset();
  Offer& o = offer();
  Drbg rng("driver-refund", 9);
  const KeyPair buyer = KeyPair::generate(rng);
  const auto buyer_addr = sys().chain().create_account(buyer, 10'000);
  const std::uint64_t before = sys().chain().balance(buyer_addr);

  // The seller client is dead for the whole run.
  fault::inject(fault::points::kExchangeSettle, Schedule::always());

  SessionStore store;
  ExchangeDriver driver(sys(), tp(), store);
  ExchangeDriver::Config cfg;
  cfg.amount = 800;
  cfg.timeout_blocks = 4;
  const auto report = driver.drive(buyer, seller_keys(), a, o, cfg);
  EXPECT_EQ(report.status, DriveStatus::kRefunded);
  EXPECT_GT(report.settle_attempts, 0);
  EXPECT_EQ(sys().chain().balance(buyer_addr), before);
  const auto info = sys().arbiter().exchange(report.exchange_id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, ExchangeState::kRefunded);
}

TEST_F(DriverScenarios, ResumeIsIdempotentAfterCompletion) {
  OwnedAsset& a = asset();
  Offer& o = offer();
  Drbg rng("driver-idem", 11);
  const KeyPair buyer = KeyPair::generate(rng);
  sys().chain().create_account(buyer, 10'000);

  SessionStore store;
  ExchangeDriver driver(sys(), tp(), store);
  ExchangeDriver::Config cfg;
  cfg.amount = 300;
  const auto report = driver.drive(buyer, seller_keys(), a, o, cfg);
  ASSERT_EQ(report.status, DriveStatus::kSettled);
  const std::uint64_t seller_after =
      sys().chain().balance(crypto::address_of(seller_keys().pk));

  // A replayed recovery pass must neither resend the settle nor move
  // funds: every persisted session is already terminal.
  const auto replay = driver.resume_all(buyer, seller_keys(), &a, cfg);
  EXPECT_TRUE(replay.empty());
  EXPECT_EQ(sys().chain().balance(crypto::address_of(seller_keys().pk)),
            seller_after);
}

TEST_F(DriverScenarios, TransientFaultsEverywhereStillSettles) {
  OwnedAsset& a = asset();
  Offer& o = offer();
  Drbg rng("driver-transient", 13);
  const KeyPair buyer = KeyPair::generate(rng);
  sys().chain().create_account(buyer, 10'000);

  // One transient failure at every step of the pipeline.
  fault::inject(fault::points::kExchangeVerify, Schedule::once());
  fault::inject(fault::points::kExchangeLock, Schedule::once());
  fault::inject(fault::points::kChainSubmit, Schedule::once());
  fault::inject(fault::points::kProverJob, Schedule::once());
  fault::inject(fault::points::kExchangeSettle, Schedule::once());
  fault::inject(fault::points::kExchangeRecover, Schedule::once());
  fault::inject(fault::points::kStorageFetchNode, Schedule::once());

  SessionStore store;
  ExchangeDriver driver(sys(), tp(), store);
  ExchangeDriver::Config cfg;
  cfg.amount = 450;
  const auto report = driver.drive(buyer, seller_keys(), a, o, cfg);
  EXPECT_EQ(report.status, DriveStatus::kSettled);
  EXPECT_TRUE(report.data_recovered);
  EXPECT_EQ(report.data, a.plain);
}

// --- durable-ledger chaos ----------------------------------------------
//
// Kill a full ZkdetSystem (SRS, contracts, durable ledger) at every
// ledger fail-point — including mid-bootstrap, while the system's own
// deploys are being journaled — then reopen the same data directory
// with a fresh system and require that the durable prefix validates,
// every contract re-binds to its persisted state, and the restored
// system keeps sealing blocks. The unit-level sweep of hit positions
// lives in ledger_crash_matrix; this exercises the same property
// through the real system bootstrap path.

struct LedgerChaos : ::testing::Test {
  void TearDown() override { fault::clear_all(); }
};

TEST_F(LedgerChaos, KillAtEveryLedgerFailPointThenReopenRestoresTheSystem) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("zkdet-chaos-ledger-" + std::to_string(::getpid()));

  ledger::Options opts;
  opts.snapshot_interval = 3;  // snapshots mid-bootstrap and mid-run

  for (const char* point : fault::points::kLedgerAll) {
    // hit 1 kills the very first write (bootstrap journaling); hit 5
    // kills mid-history (5th WAL append / 5th snapshot).
    for (const std::uint64_t hit : {std::uint64_t{1}, std::uint64_t{5}}) {
      SCOPED_TRACE(std::string(point) + "@" + std::to_string(hit));
      fs::remove_all(dir);

      fault::inject(point, Schedule::once(hit));
      bool crashed = false;
      try {
        ZkdetSystem doomed(1 << 12, 31, dir.string(), opts);
        Drbg rng("chaos-ledger", 3);
        const KeyPair user = KeyPair::generate(rng);
        doomed.chain().create_account(user, 5'000);
        // 12 ticks + 5 bootstrap deploys = 17 blocks: 5 snapshots at
        // interval 3, so the snapshot fail-point reaches hit 5 too.
        for (int i = 0; i < 12; ++i) {
          doomed.chain().call(user, "ledger-chaos tick " + std::to_string(i),
                              [](chain::CallContext&) {});
        }
      } catch (const ledger::CrashInjected&) {
        crashed = true;
      } catch (const ledger::IoError&) {
        crashed = true;
      }
      EXPECT_TRUE(crashed) << "fail-point never fired";
      fault::clear_all();

      // Reopen: whatever prefix survived must be intact, the system's
      // deploys must adopt their persisted contracts (no duplicates,
      // nothing orphaned), and the system must keep working.
      ZkdetSystem sys(1 << 12, 31, dir.string(), opts);
      EXPECT_TRUE(sys.chain().validate_chain());
      EXPECT_TRUE(sys.chain().pending_adoptions().empty());
      ASSERT_NE(sys.ledger(), nullptr);
      Drbg rng("chaos-ledger", 3);
      const KeyPair user = KeyPair::generate(rng);
      sys.chain().create_account(user, 5'000);  // idempotent if durable
      const auto receipt = sys.chain().call(
          user, "post-recovery tick", [](chain::CallContext&) {});
      EXPECT_TRUE(receipt.success);
      EXPECT_TRUE(sys.chain().validate_chain());
    }
  }
  fs::remove_all(dir);
}

// --- RPC chaos: rpc.* fail-points against a live socket server ----------
//
// The serving layer adds failure modes the library never had: the accept
// path dying, a client vanishing after its request was admitted, the
// admission queue shedding, and a response frame tearing mid-write. The
// invariants are the same as every other chaos surface: the chain's
// funds are conserved and each exchange terminates settled xor refunded
// — a lost RESPONSE must never mean lost or duplicated STATE.

struct RpcChaos : ChaosBase {
  // Shared dispatcher over the chaos system: registered principals and
  // published assets persist across the suite (publishing is
  // proof-heavy; the chaos target is the serving layer).
  static rpc::Dispatcher& disp() {
    static rpc::Dispatcher d(sys(), tp(), /*seed=*/606);
    return d;
  }

  struct World {
    std::uint64_t seller = 0;
    std::uint64_t buyer = 0;
    std::uint64_t token = 0;
    std::uint64_t offer = 0;
  };
  static World& world() {
    static World w = [] {
      World out;
      std::vector<rpc::Request> rqs;
      rqs.push_back(rq(rpc::Op::kRegister, 0, 0, 200'000));
      rqs.push_back(rq(rpc::Op::kRegister, 0, 0, 500'000));
      auto rs = disp().run(rqs);
      ZKDET_CHECK(rs[0].status == rpc::Status::kOk, "seller register");
      ZKDET_CHECK(rs[1].status == rpc::Status::kOk, "buyer register");
      out.seller = rs[0].value;
      out.buyer = rs[1].value;
      std::vector<rpc::Request> pub;
      pub.push_back(rq(rpc::Op::kPublish, 0, out.seller, 0, 0, 0,
                       {Fr::from_u64(71), Fr::from_u64(72)}));
      rs = disp().run(pub);
      ZKDET_CHECK(rs[0].status == rpc::Status::kOk, "publish");
      out.token = rs[0].value;
      std::vector<rpc::Request> off;
      off.push_back(rq(rpc::Op::kOffer, 0, out.seller, out.token));
      rs = disp().run(off);
      ZKDET_CHECK(rs[0].status == rpc::Status::kOk, "offer");
      out.offer = rs[0].value;
      return out;
    }();
    return w;
  }

  static rpc::Request rq(rpc::Op op, std::uint64_t id,
                         std::uint64_t client = 0, std::uint64_t a = 0,
                         std::uint64_t b = 0, std::uint64_t c = 0,
                         std::vector<Fr> frs = {}) {
    rpc::Request r;
    r.op = op;
    r.id = id != 0 ? id : next_id();
    r.client = client;
    r.a = a;
    r.b = b;
    r.c = c;
    r.frs = std::move(frs);
    return r;
  }
  static std::uint64_t next_id() {
    static std::uint64_t id = 90'000;
    return ++id;
  }

  // Total of every account balance on the chain (escrow lives in the
  // arbiter contract's account, so lock/settle/refund only move value
  // within this sum).
  static std::uint64_t total_funds() {
    std::uint64_t total = 0;
    for (const auto& [addr, bal] : sys().chain().balances_map()) total += bal;
    return total;
  }

  // A server on a fresh unix socket under a throwaway path.
  struct Harness {
    std::filesystem::path sock;
    std::optional<rpc::Server> server;
    Harness() {
      static std::atomic<int> counter{0};
      sock = std::filesystem::temp_directory_path() /
             ("zkdet-chaos-rpc-" + std::to_string(::getpid()) + "-" +
              std::to_string(counter.fetch_add(1)) + ".sock");
      auto listener = rpc::sockio::listen_unix(sock.string());
      ZKDET_CHECK(listener.has_value(), "chaos rpc listener");
      server.emplace(disp(), std::move(*listener));
    }
    ~Harness() { std::filesystem::remove(sock); }
    [[nodiscard]] std::optional<rpc::Client> connect() const {
      return rpc::Client::connect_unix(sock.string());
    }
  };

  // Locks a fresh exchange through the RPC path; returns its id.
  static std::uint64_t lock_exchange(Harness& h, rpc::Client& client) {
    const auto rs = client.call(
        *h.server,
        rq(rpc::Op::kLock, 0, world().buyer, world().offer, 3'000, 1'000));
    ZKDET_CHECK(rs.has_value() && rs->status == rpc::Status::kOk,
                "chaos lock failed");
    return rs->value;
  }
};

TEST_F(RpcChaos, AcceptFailureDropsConnectionReconnectSucceeds) {
  Harness h;
  fault::inject(fault::points::kRpcAccept, Schedule::once(1));
  auto doomed = h.connect();
  ASSERT_TRUE(doomed.has_value());  // backlog accepts client-side
  // The server-side accept dies: the call never completes and the
  // client observes a dead connection, not a hung one.
  EXPECT_FALSE(doomed->call(*h.server, rq(rpc::Op::kPing, 0, 0, 1)));
  EXPECT_FALSE(doomed->alive());
  EXPECT_GT(fault::failures(fault::points::kRpcAccept), 0u);
  // Reconnect: service resumes immediately.
  auto retry = h.connect();
  ASSERT_TRUE(retry.has_value());
  const auto rs = retry->call(*h.server, rq(rpc::Op::kPing, 0, 0, 2));
  ASSERT_TRUE(rs.has_value());
  EXPECT_EQ(rs->status, rpc::Status::kOk);
  EXPECT_EQ(rs->value, 2u);
}

TEST_F(RpcChaos, QueueFullShedIsTypedAndRetryableOnSameConnection) {
  Harness h;
  auto client = h.connect();
  ASSERT_TRUE(client.has_value());
  fault::inject(fault::points::kRpcQueueFull, Schedule::once(1));
  const auto shed = client->call(*h.server, rq(rpc::Op::kPing, 0, 0, 3));
  ASSERT_TRUE(shed.has_value()) << "shed must be an answer, not silence";
  EXPECT_EQ(shed->status, rpc::Status::kOverloaded);
  EXPECT_FALSE(shed->text.empty());
  // Same connection, immediate retry: admitted and served.
  const auto rs = client->call(*h.server, rq(rpc::Op::kPing, 0, 0, 4));
  ASSERT_TRUE(rs.has_value());
  EXPECT_EQ(rs->status, rpc::Status::kOk);
  EXPECT_EQ(rs->value, 4u);
}

TEST_F(RpcChaos, ClientKilledMidSettleStateCommitsFundsConserved) {
  Harness h;
  auto client = h.connect();
  ASSERT_TRUE(client.has_value());
  world();  // materialize registrations before snapshotting total funds
  const std::uint64_t funds_before_lock = total_funds();
  const std::uint64_t xid = lock_exchange(h, *client);

  // The seller's connection dies the moment its settle is admitted: the
  // work must still execute (admission is the commit point for intake),
  // only the response is lost.
  fault::inject(fault::points::kRpcSessionDisconnect, Schedule::once(1));
  ASSERT_TRUE(
      client->send(rq(rpc::Op::kSettle, 0, world().seller, xid)));
  h.server->run_until_idle();
  EXPECT_GT(fault::failures(fault::points::kRpcSessionDisconnect), 0u);
  EXPECT_EQ(h.server->session_count(), 0u);

  // A fresh connection observes the committed outcome: settled (xor
  // refunded — and the lock deadline is far away), funds conserved.
  auto probe = h.connect();
  ASSERT_TRUE(probe.has_value());
  const auto xi =
      probe->call(*h.server, rq(rpc::Op::kReadExchange, 0, 0, xid));
  ASSERT_TRUE(xi.has_value());
  EXPECT_EQ(xi->value, static_cast<std::uint64_t>(ExchangeState::kSettled));
  EXPECT_EQ(total_funds(), funds_before_lock);
  EXPECT_TRUE(sys().chain().validate_chain());
}

TEST_F(RpcChaos, TornSettleResponseLosesAnswerNeverState) {
  Harness h;
  auto client = h.connect();
  ASSERT_TRUE(client.has_value());
  const std::uint64_t funds_before_lock = total_funds();
  const std::uint64_t xid = lock_exchange(h, *client);

  // The settle executes, but its response frame tears mid-write. The
  // client must observe a missing answer and a dead connection — never
  // a corrupted payload, never doubled or vanished funds.
  fault::inject(fault::points::kRpcWriteTorn, Schedule::once(1));
  const auto settle_id = next_id();
  ASSERT_TRUE(
      client->send(rq(rpc::Op::kSettle, settle_id, world().seller, xid)));
  h.server->run_until_idle();
  client->flush();
  client->poll();
  EXPECT_FALSE(client->take(settle_id).has_value());
  EXPECT_GT(fault::failures(fault::points::kRpcWriteTorn), 0u);

  // Re-query over a fresh connection: the settle committed exactly once.
  auto probe = h.connect();
  ASSERT_TRUE(probe.has_value());
  const auto xi =
      probe->call(*h.server, rq(rpc::Op::kReadExchange, 0, 0, xid));
  ASSERT_TRUE(xi.has_value());
  EXPECT_EQ(xi->value, static_cast<std::uint64_t>(ExchangeState::kSettled));
  EXPECT_EQ(total_funds(), funds_before_lock);
  EXPECT_TRUE(sys().chain().validate_chain());
}

}  // namespace
}  // namespace zkdet::core
