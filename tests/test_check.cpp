#include <gtest/gtest.h>

#include "check/check.hpp"
#include "check/invariants.hpp"
#include "curve_attack_helpers.hpp"
#include "ec/curve.hpp"
#include "ff/bn254.hpp"
#include "ff/fp12.hpp"

namespace zkdet {
namespace {

using check::CheckFailure;
using check::ScopedThrowHandler;
using ec::G1;
using ec::G2;
using ff::Fp;
using ff::Fp2;
using ff::Fp12;
using ff::Fr;
using ff::U256;

// --- macro tiers --------------------------------------------------------

TEST(CheckMacros, PassingCheckIsSilent) {
  ScopedThrowHandler guard;
  EXPECT_NO_THROW(ZKDET_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(ZKDET_CHECK(true, "message is not evaluated"));
}

TEST(CheckMacros, FailingCheckRoutesToHandler) {
  ScopedThrowHandler guard;
  EXPECT_THROW(ZKDET_CHECK(false), CheckFailure);
}

TEST(CheckMacros, FailureReportCarriesExpressionAndMessage) {
  ScopedThrowHandler guard;
  try {
    ZKDET_CHECK(2 + 2 == 5, "orwell was ", 42, " percent right");
    FAIL() << "check did not fire";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("orwell was 42 percent right"), std::string::npos)
        << what;
  }
}

TEST(CheckMacros, MessageArgumentsOnlyEvaluatedOnFailure) {
  ScopedThrowHandler guard;
  int evals = 0;
  const auto count = [&evals] {
    ++evals;
    return "x";
  };
  ZKDET_CHECK(true, count());
  EXPECT_EQ(evals, 0);
  EXPECT_THROW(ZKDET_CHECK(false, count()), CheckFailure);
  EXPECT_EQ(evals, 1);
}

TEST(CheckMacros, AssertTierMatchesBuildConfig) {
  ScopedThrowHandler guard;
#ifdef ZKDET_CHECKED
  EXPECT_THROW(ZKDET_ASSERT(false), CheckFailure);
#else
  // Disabled tier: the condition must not be evaluated at all.
  bool evaluated = false;
  const auto probe = [&evaluated] {
    evaluated = true;
    return false;
  };
  EXPECT_NO_THROW(ZKDET_ASSERT(probe()));
  EXPECT_FALSE(evaluated);
#endif
}

TEST(CheckMacros, DcheckActiveInDebugOrCheckedBuilds) {
  ScopedThrowHandler guard;
#if defined(ZKDET_CHECKED) || !defined(NDEBUG)
  EXPECT_THROW(ZKDET_DCHECK(false), CheckFailure);
#else
  EXPECT_NO_THROW(ZKDET_DCHECK(false));
#endif
}

TEST(CheckMacros, HandlerIsRestoredAfterScope) {
  const auto before = check::set_failure_handler(nullptr);  // default
  check::set_failure_handler(before);
  {
    ScopedThrowHandler guard;
    EXPECT_THROW(ZKDET_CHECK(false), CheckFailure);
  }
  const auto after = check::set_failure_handler(nullptr);
  check::set_failure_handler(after);
  EXPECT_EQ(before, after);
}

// --- field canonicality -------------------------------------------------

TEST(Invariants, CanonicalFieldElements) {
  EXPECT_TRUE(check::is_canonical(Fr::zero()));
  EXPECT_TRUE(check::is_canonical(Fr::one()));
  EXPECT_TRUE(check::is_canonical(-Fr::one()));
  EXPECT_TRUE(check::is_canonical(Fp::from_dec("12345678901234567890")));
}

TEST(Invariants, NonCanonicalMontgomeryValueDetected) {
  // from_raw trusts the caller; the modulus itself is the smallest
  // out-of-range representation.
  const Fr bad = Fr::from_raw(Fr::MOD);
  EXPECT_FALSE(check::is_canonical(bad));
  U256 above = Fr::MOD;
  ff::u256_add(above, above, U256{7});
  EXPECT_FALSE(check::is_canonical(Fr::from_raw(above)));
}

TEST(Invariants, TowerConsistency) {
  EXPECT_TRUE(check::is_canonical(Fp2::one()));
  EXPECT_TRUE(check::is_canonical(Fp12::one()));
  const Fp bad = Fp::from_raw(Fp::MOD);
  EXPECT_FALSE(check::is_canonical(Fp2{bad, Fp::zero()}));
  Fp12 x = Fp12::one();
  x.c[5] = Fp2{Fp::zero(), bad};
  EXPECT_FALSE(check::is_canonical(x));
}

TEST(Invariants, AllCanonicalSpans) {
  const std::vector<Fr> good = {Fr::one(), Fr::from_u64(9)};
  EXPECT_TRUE(check::all_canonical(std::span<const Fr>(good)));
  const std::vector<Fr> mixed = {Fr::one(), Fr::from_raw(Fr::MOD)};
  EXPECT_FALSE(check::all_canonical(std::span<const Fr>(mixed)));
}

// --- curve membership ---------------------------------------------------

TEST(Invariants, GroupMembershipAcceptsHonestPoints) {
  EXPECT_TRUE(check::in_g1(G1::identity()));
  EXPECT_TRUE(check::in_g1(G1::generator()));
  EXPECT_TRUE(check::in_g1(G1::generator().mul(Fr::from_u64(123456))));
  EXPECT_TRUE(check::in_g2(G2::identity()));
  EXPECT_TRUE(check::in_g2(G2::generator()));
  EXPECT_TRUE(check::in_g2(G2::generator().dbl()));
}

TEST(Invariants, OffCurvePointsDetected) {
  EXPECT_FALSE(check::in_g1(test::off_curve_g1()));
  EXPECT_FALSE(check::on_g2_curve(test::off_curve_g2()));
  EXPECT_FALSE(check::in_g2(test::off_curve_g2()));
}

TEST(Invariants, WrongSubgroupG2Detected) {
  const G2 rogue = test::wrong_subgroup_g2();
  ASSERT_FALSE(rogue.is_identity()) << "helper failed to build a twist point";
  EXPECT_TRUE(check::on_g2_curve(rogue));
  EXPECT_FALSE(check::in_g2_subgroup(rogue));
  EXPECT_FALSE(check::in_g2(rogue));
}

// --- NTT domains --------------------------------------------------------

TEST(Invariants, NttDomainPreconditions) {
  EXPECT_TRUE(check::valid_ntt_domain(1));
  EXPECT_TRUE(check::valid_ntt_domain(2));
  EXPECT_TRUE(check::valid_ntt_domain(1u << 20));
  EXPECT_TRUE(check::valid_ntt_domain(std::size_t{1} << Fr::TWO_ADICITY));
  EXPECT_FALSE(check::valid_ntt_domain(0));
  EXPECT_FALSE(check::valid_ntt_domain(3));
  EXPECT_FALSE(check::valid_ntt_domain(6));
  EXPECT_FALSE(check::valid_ntt_domain(std::size_t{1} << (Fr::TWO_ADICITY + 1)));
}

// --- Plonk permutation --------------------------------------------------

TEST(Invariants, PermutationAudit) {
  const std::vector<std::uint32_t> id = {0, 1, 2, 3, 4, 5};
  EXPECT_TRUE(
      check::is_permutation(std::span<const std::uint32_t>(id), id.size()));
  const std::vector<std::uint32_t> rot = {1, 2, 0};
  EXPECT_TRUE(
      check::is_permutation(std::span<const std::uint32_t>(rot), rot.size()));
  const std::vector<std::uint32_t> dup = {0, 1, 1};
  EXPECT_FALSE(
      check::is_permutation(std::span<const std::uint32_t>(dup), dup.size()));
  const std::vector<std::uint32_t> oob = {0, 1, 3};
  EXPECT_FALSE(
      check::is_permutation(std::span<const std::uint32_t>(oob), oob.size()));
  const std::vector<std::uint32_t> short_sigma = {0, 1};
  EXPECT_FALSE(check::is_permutation(std::span<const std::uint32_t>(short_sigma),
                                     3));
}

TEST(Invariants, GrandProductClosing) {
  EXPECT_TRUE(check::grand_product_closes(Fr::one()));
  EXPECT_FALSE(check::grand_product_closes(Fr::from_u64(2)));
}

}  // namespace
}  // namespace zkdet
