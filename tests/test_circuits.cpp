#include <gtest/gtest.h>

#include "core/circuits.hpp"
#include "crypto/mimc.hpp"
#include "crypto/rng.hpp"
#include "plonk/plonk.hpp"

namespace zkdet::core {
namespace {

using crypto::Drbg;
using ff::Fr;
using gadgets::CircuitBuilder;

struct CircuitFixture : ::testing::Test {
  static const plonk::Srs& srs() {
    static const plonk::Srs s = [] {
      Drbg rng(1);
      return plonk::Srs::setup((1 << 14) + 16, rng);
    }();
    return s;
  }

  Drbg rng{2};

  // Proves and verifies a builder circuit; returns (verified-ok,
  // tampered-public-rejected).
  std::pair<bool, bool> roundtrip(const CircuitBuilder& bld) {
    auto keys = plonk::preprocess(bld.cs(), srs());
    if (!keys) return {false, false};
    auto proof =
        plonk::prove(keys->pk, bld.cs(), srs(), bld.witness(), rng);
    if (!proof) return {false, false};
    std::vector<Fr> pubs = bld.cs().extract_public_inputs(bld.witness());
    const bool ok = plonk::verify(keys->vk, pubs, *proof);
    pubs[0] += Fr::one();
    const bool tampered = plonk::verify(keys->vk, pubs, *proof);
    return {ok, !tampered};
  }

  std::vector<Fr> make_data(std::size_t n) {
    std::vector<Fr> d;
    for (std::size_t i = 0; i < n; ++i) d.push_back(rng.random_fr());
    return d;
  }
};

TEST_F(CircuitFixture, EncryptionCircuitMatchesNativeCiphertext) {
  const std::vector<Fr> plain = make_data(4);
  const Fr key = rng.random_fr();
  const Fr nonce = rng.random_fr();
  const Fr blinder = rng.random_fr();
  CircuitBuilder bld = build_encryption_circuit(plain, key, nonce, blinder);
  EXPECT_TRUE(bld.witness_consistent());

  const std::vector<Fr> pubs = bld.cs().extract_public_inputs(bld.witness());
  // layout: nonce, commitment, ciphertext...
  ASSERT_EQ(pubs.size(), 2 + plain.size());
  EXPECT_EQ(pubs[0], nonce);
  EXPECT_EQ(pubs[1], commit_dataset(plain, blinder));
  const auto native_ct = crypto::mimc_ctr_encrypt(key, nonce, plain);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(pubs[2 + i], native_ct[i]);
  }
  const auto [ok, tamper_rejected] = roundtrip(bld);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(tamper_rejected);
}

TEST_F(CircuitFixture, EncryptionCircuitWrongCommitmentFails) {
  const std::vector<Fr> plain = make_data(4);
  CircuitBuilder bld = build_encryption_circuit(plain, rng.random_fr(),
                                                rng.random_fr(),
                                                rng.random_fr());
  auto keys = plonk::preprocess(bld.cs(), srs());
  ASSERT_TRUE(keys);
  auto proof = plonk::prove(keys->pk, bld.cs(), srs(), bld.witness(), rng);
  ASSERT_TRUE(proof);
  std::vector<Fr> pubs = bld.cs().extract_public_inputs(bld.witness());
  pubs[1] += Fr::one();  // claim a different dataset commitment
  EXPECT_FALSE(plonk::verify(keys->vk, pubs, *proof));
  // or a different ciphertext element
  std::vector<Fr> pubs2 = bld.cs().extract_public_inputs(bld.witness());
  pubs2[3] += Fr::one();
  EXPECT_FALSE(plonk::verify(keys->vk, pubs2, *proof));
}

TEST_F(CircuitFixture, DuplicationCircuit) {
  const std::vector<Fr> src = make_data(4);
  const Fr o_s = rng.random_fr();
  const Fr o_d = rng.random_fr();
  CircuitBuilder bld = build_duplication_circuit(src, o_s, o_d);
  EXPECT_TRUE(bld.witness_consistent());
  const std::vector<Fr> pubs = bld.cs().extract_public_inputs(bld.witness());
  ASSERT_EQ(pubs.size(), 2u);
  EXPECT_EQ(pubs[0], commit_dataset(src, o_s));
  EXPECT_EQ(pubs[1], commit_dataset(src, o_d));
  EXPECT_NE(pubs[0], pubs[1]);  // blinders differ -> hiding
  const auto [ok, tamper_rejected] = roundtrip(bld);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(tamper_rejected);
}

TEST_F(CircuitFixture, AggregationCircuitConcatenates) {
  const std::vector<std::vector<Fr>> sources{make_data(2), make_data(3),
                                             make_data(1)};
  const std::vector<Fr> blinders{rng.random_fr(), rng.random_fr(),
                                 rng.random_fr()};
  const Fr o_d = rng.random_fr();
  CircuitBuilder bld = build_aggregation_circuit(sources, blinders, o_d);
  EXPECT_TRUE(bld.witness_consistent());
  const std::vector<Fr> pubs = bld.cs().extract_public_inputs(bld.witness());
  ASSERT_EQ(pubs.size(), 4u);
  std::vector<Fr> concat;
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(pubs[k], commit_dataset(sources[k], blinders[k]));
    concat.insert(concat.end(), sources[k].begin(), sources[k].end());
  }
  EXPECT_EQ(pubs[3], commit_dataset(concat, o_d));
  const auto [ok, tamper_rejected] = roundtrip(bld);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(tamper_rejected);
}

TEST_F(CircuitFixture, PartitionCircuitSplits) {
  const std::vector<Fr> src = make_data(6);
  const std::vector<std::size_t> sizes{2, 3, 1};
  const Fr o_s = rng.random_fr();
  const std::vector<Fr> o_d{rng.random_fr(), rng.random_fr(), rng.random_fr()};
  CircuitBuilder bld = build_partition_circuit(src, sizes, o_s, o_d);
  EXPECT_TRUE(bld.witness_consistent());
  const std::vector<Fr> pubs = bld.cs().extract_public_inputs(bld.witness());
  ASSERT_EQ(pubs.size(), 4u);
  EXPECT_EQ(pubs[0], commit_dataset(src, o_s));
  EXPECT_EQ(pubs[1], commit_dataset({src[0], src[1]}, o_d[0]));
  EXPECT_EQ(pubs[2], commit_dataset({src[2], src[3], src[4]}, o_d[1]));
  EXPECT_EQ(pubs[3], commit_dataset({src[5]}, o_d[2]));
  const auto [ok, tamper_rejected] = roundtrip(bld);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(tamper_rejected);
}

TEST_F(CircuitFixture, ProcessingCircuitWithCustomTransform) {
  const std::vector<Fr> src = make_data(3);
  const Fr o_s = rng.random_fr();
  const Fr o_d = rng.random_fr();
  // transform: derived = [sum of squares]
  const TransformGadget square_sum =
      [](CircuitBuilder& bld,
         std::span<const gadgets::Wire> s) -> std::vector<gadgets::Wire> {
    gadgets::Wire acc = bld.zero();
    for (const auto w : s) acc = bld.add(acc, bld.mul(w, w));
    return {acc};
  };
  CircuitBuilder bld = build_processing_circuit(src, o_s, o_d, square_sum);
  EXPECT_TRUE(bld.witness_consistent());
  Fr expect = Fr::zero();
  for (const Fr& x : src) expect += x * x;
  const std::vector<Fr> pubs = bld.cs().extract_public_inputs(bld.witness());
  EXPECT_EQ(pubs[1], commit_dataset({expect}, o_d));
  const auto [ok, tamper_rejected] = roundtrip(bld);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(tamper_rejected);
}

TEST_F(CircuitFixture, ExchangeDataCircuitWithPredicate) {
  // phi: every entry below 2^32 (range predicate a seller might publish)
  std::vector<Fr> plain;
  for (int i = 0; i < 4; ++i) {
    plain.push_back(Fr::from_u64(1000 + static_cast<std::uint64_t>(i)));
  }
  const Predicate phi = [](CircuitBuilder& bld,
                           std::span<const gadgets::Wire> data) {
    for (const auto w : data) bld.assert_range(w, 32);
  };
  CircuitBuilder bld = build_exchange_data_circuit(
      plain, rng.random_fr(), rng.random_fr(), rng.random_fr(), phi);
  EXPECT_TRUE(bld.witness_consistent());
  const auto [ok, tamper_rejected] = roundtrip(bld);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(tamper_rejected);
}

TEST_F(CircuitFixture, ExchangeDataCircuitPredicateViolationUnprovable) {
  // An entry outside the range: the witness no longer satisfies the
  // circuit, so the prover refuses (seller cannot prove false phi).
  std::vector<Fr> plain{Fr::from_u64(5), -Fr::one(), Fr::from_u64(7),
                        Fr::from_u64(8)};
  const Predicate phi = [](CircuitBuilder& bld,
                           std::span<const gadgets::Wire> data) {
    for (const auto w : data) bld.assert_range(w, 32);
  };
  CircuitBuilder bld = build_exchange_data_circuit(
      plain, rng.random_fr(), rng.random_fr(), rng.random_fr(), phi);
  EXPECT_FALSE(bld.witness_consistent());
  auto keys = plonk::preprocess(bld.cs(), srs());
  ASSERT_TRUE(keys);
  EXPECT_FALSE(
      plonk::prove(keys->pk, bld.cs(), srs(), bld.witness(), rng).has_value());
}

TEST_F(CircuitFixture, KeyCircuitRelation) {
  const Fr k = rng.random_fr();
  const Fr o = rng.random_fr();
  const Fr k_v = rng.random_fr();
  CircuitBuilder bld = build_key_circuit(k, o, k_v);
  EXPECT_TRUE(bld.witness_consistent());
  const std::vector<Fr> pubs = bld.cs().extract_public_inputs(bld.witness());
  ASSERT_EQ(pubs.size(), 3u);
  EXPECT_EQ(pubs[0], k + k_v);
  EXPECT_EQ(pubs[1], commit_key(k, o));
  EXPECT_EQ(pubs[2], hash_key(k_v));
  const auto [ok, tamper_rejected] = roundtrip(bld);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(tamper_rejected);
}

TEST_F(CircuitFixture, KeyCircuitBindsEachPublicInput) {
  const Fr k = rng.random_fr();
  const Fr o = rng.random_fr();
  const Fr k_v = rng.random_fr();
  CircuitBuilder bld = build_key_circuit(k, o, k_v);
  auto keys = plonk::preprocess(bld.cs(), srs());
  auto proof = plonk::prove(keys->pk, bld.cs(), srs(), bld.witness(), rng);
  ASSERT_TRUE(proof);
  const std::vector<Fr> pubs = bld.cs().extract_public_inputs(bld.witness());
  for (std::size_t i = 0; i < 3; ++i) {
    std::vector<Fr> bad = pubs;
    bad[i] += Fr::one();
    EXPECT_FALSE(plonk::verify(keys->vk, bad, *proof)) << "public " << i;
  }
}

TEST_F(CircuitFixture, CircuitShapeIsValueIndependent) {
  // Two instances with different values must produce identical gate
  // structure (needed for key caching).
  const auto shape = [](const CircuitBuilder& bld) {
    return std::make_pair(bld.cs().num_rows(), bld.cs().num_variables());
  };
  CircuitBuilder a =
      build_key_circuit(rng.random_fr(), rng.random_fr(), rng.random_fr());
  CircuitBuilder b = build_key_circuit(Fr::one(), Fr::one(), Fr::one());
  EXPECT_EQ(shape(a), shape(b));

  const std::vector<Fr> d1 = make_data(4);
  const std::vector<Fr> d2(4, Fr::from_u64(9));
  CircuitBuilder e1 = build_encryption_circuit(d1, rng.random_fr(),
                                               rng.random_fr(),
                                               rng.random_fr());
  CircuitBuilder e2 =
      build_encryption_circuit(d2, Fr::one(), Fr::one(), Fr::one());
  EXPECT_EQ(shape(e1), shape(e2));
}

TEST_F(CircuitFixture, KeysCanBeReusedAcrossInstances) {
  // Keys preprocessed from one instance verify proofs of another.
  CircuitBuilder a =
      build_key_circuit(Fr::one(), Fr::from_u64(2), Fr::from_u64(3));
  auto keys = plonk::preprocess(a.cs(), srs());
  ASSERT_TRUE(keys);
  const Fr k = rng.random_fr(), o = rng.random_fr(), kv = rng.random_fr();
  CircuitBuilder b = build_key_circuit(k, o, kv);
  auto proof = plonk::prove(keys->pk, b.cs(), srs(), b.witness(), rng);
  ASSERT_TRUE(proof);
  EXPECT_TRUE(plonk::verify(keys->vk,
                            b.cs().extract_public_inputs(b.witness()), *proof));
}

}  // namespace
}  // namespace zkdet::core
