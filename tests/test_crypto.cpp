#include <gtest/gtest.h>

#include "crypto/mimc.hpp"
#include "crypto/poseidon.hpp"
#include "crypto/rng.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"

namespace zkdet::crypto {
namespace {

using ff::Fr;

// --- SHA-256 against FIPS 180-4 known-answer vectors ---

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_encode(Sha256::digest(std::string(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_encode(Sha256::digest(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_encode(Sha256::digest(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_encode(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (const char c : msg) {
    h.update(std::string(1, c));
  }
  EXPECT_EQ(h.finalize(), Sha256::digest(msg));
}

TEST(Sha256, PaddingBoundaries) {
  // lengths around the 55/56/64-byte padding boundaries must all differ
  std::vector<std::array<std::uint8_t, 32>> digests;
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
    digests.push_back(Sha256::digest(std::string(len, 'x')));
  }
  for (std::size_t i = 0; i < digests.size(); ++i) {
    for (std::size_t j = i + 1; j < digests.size(); ++j) {
      EXPECT_NE(digests[i], digests[j]);
    }
  }
}

// --- DRBG ---

TEST(Drbg, Deterministic) {
  Drbg a(42);
  Drbg b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Drbg, SeedsDiffer) {
  Drbg a(1);
  Drbg b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a() != b());
  EXPECT_TRUE(any_diff);
}

TEST(Drbg, RandomFrInField) {
  Drbg rng(3);
  for (int i = 0; i < 50; ++i) {
    const Fr x = rng.random_fr();
    EXPECT_TRUE(ff::u256_less(x.to_canonical(), Fr::MOD));
  }
}

// --- MiMC ---

TEST(Mimc, RoundConstantsStable) {
  const auto& c = mimc_round_constants();
  ASSERT_EQ(c.size(), kMimcRounds);
  EXPECT_TRUE(c[0].is_zero());
  EXPECT_FALSE(c[1].is_zero());
  // deterministic across calls
  EXPECT_EQ(c[5], mimc_round_constants()[5]);
}

TEST(Mimc, BlockDeterministic) {
  const Fr k = Fr::from_u64(7);
  const Fr m = Fr::from_u64(9);
  EXPECT_EQ(mimc_encrypt_block(k, m), mimc_encrypt_block(k, m));
  EXPECT_NE(mimc_encrypt_block(k, m), mimc_encrypt_block(k + Fr::one(), m));
  EXPECT_NE(mimc_encrypt_block(k, m), mimc_encrypt_block(k, m + Fr::one()));
}

TEST(Mimc, CtrRoundtrip) {
  Drbg rng(4);
  std::vector<Fr> plain;
  for (int i = 0; i < 20; ++i) plain.push_back(rng.random_fr());
  const Fr key = rng.random_fr();
  const Fr nonce = rng.random_fr();
  const auto ct = mimc_ctr_encrypt(key, nonce, plain);
  EXPECT_EQ(ct.size(), plain.size());
  EXPECT_EQ(mimc_ctr_decrypt(key, nonce, ct), plain);
}

TEST(Mimc, CtrWrongKeyGarbles) {
  Drbg rng(5);
  std::vector<Fr> plain{rng.random_fr(), rng.random_fr()};
  const Fr key = rng.random_fr();
  const Fr nonce = rng.random_fr();
  const auto ct = mimc_ctr_encrypt(key, nonce, plain);
  EXPECT_NE(mimc_ctr_decrypt(key + Fr::one(), nonce, ct), plain);
  EXPECT_NE(mimc_ctr_decrypt(key, nonce + Fr::one(), ct), plain);
}

TEST(Mimc, CtrBlocksDifferAcrossPositions) {
  // identical plaintext blocks must encrypt differently (CTR property)
  const std::vector<Fr> plain(4, Fr::from_u64(5));
  const auto ct = mimc_ctr_encrypt(Fr::from_u64(1), Fr::from_u64(2), plain);
  EXPECT_NE(ct[0], ct[1]);
  EXPECT_NE(ct[1], ct[2]);
}

TEST(Mimc, HashBasics) {
  const Fr h1 = mimc_hash({Fr::from_u64(1), Fr::from_u64(2)});
  const Fr h2 = mimc_hash({Fr::from_u64(2), Fr::from_u64(1)});
  EXPECT_NE(h1, h2);
  EXPECT_EQ(h1, mimc_hash({Fr::from_u64(1), Fr::from_u64(2)}));
}

// --- Poseidon ---

TEST(Poseidon, PermutationDeterministic) {
  const auto& params = PoseidonParams::get(3);
  EXPECT_EQ(params.t, 3u);
  EXPECT_EQ(params.rf, 8u);
  EXPECT_EQ(params.rp, 60u);
  std::vector<Fr> s1{Fr::from_u64(1), Fr::from_u64(2), Fr::from_u64(3)};
  std::vector<Fr> s2 = s1;
  poseidon_permute(params, s1);
  poseidon_permute(params, s2);
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1[0], Fr::from_u64(1));  // state actually mixed
}

TEST(Poseidon, HashLengthDomainSeparation) {
  // H(m) != H(m || 0) — the capacity encodes the length.
  const Fr a = poseidon_hash({Fr::from_u64(1)});
  const Fr b = poseidon_hash({Fr::from_u64(1), Fr::zero()});
  EXPECT_NE(a, b);
}

TEST(Poseidon, TagDomainSeparation) {
  const Fr a = poseidon_hash({Fr::from_u64(1)}, 1);
  const Fr b = poseidon_hash({Fr::from_u64(1)}, 2);
  EXPECT_NE(a, b);
}

TEST(Poseidon, Hash2) {
  const Fr l = Fr::from_u64(10);
  const Fr r = Fr::from_u64(20);
  EXPECT_NE(poseidon_hash2(l, r), poseidon_hash2(r, l));
  EXPECT_EQ(poseidon_hash2(l, r), poseidon_hash2(l, r));
}

TEST(Poseidon, WidthsProduceDifferentParams) {
  const auto& p2 = PoseidonParams::get(2);
  const auto& p4 = PoseidonParams::get(4);
  EXPECT_EQ(p2.mds.size(), 4u);
  EXPECT_EQ(p4.mds.size(), 16u);
  EXPECT_NE(p2.ark[0], p4.ark[0]);
}

TEST(Poseidon, MdsHasNoZeroEntries) {
  for (const std::size_t t : {2u, 3u, 5u}) {
    for (const Fr& x : PoseidonParams::get(t).mds) EXPECT_FALSE(x.is_zero());
  }
}

TEST(PoseidonCommitment, OpenAcceptsHonest) {
  Drbg rng(6);
  const std::vector<Fr> msg{Fr::from_u64(1), Fr::from_u64(2)};
  const auto [c, o] = PoseidonCommitment::commit(msg, rng);
  EXPECT_TRUE(PoseidonCommitment::open(msg, c, o));
}

TEST(PoseidonCommitment, BindingRejections) {
  Drbg rng(7);
  const std::vector<Fr> msg{Fr::from_u64(1), Fr::from_u64(2)};
  const auto [c, o] = PoseidonCommitment::commit(msg, rng);
  EXPECT_FALSE(PoseidonCommitment::open({Fr::from_u64(1), Fr::from_u64(3)}, c, o));
  EXPECT_FALSE(PoseidonCommitment::open(msg, c + Fr::one(), o));
  EXPECT_FALSE(PoseidonCommitment::open(msg, c, o + Fr::one()));
}

TEST(PoseidonCommitment, HidingBlindersChangeCommitment) {
  const std::vector<Fr> msg{Fr::from_u64(9)};
  const Fr c1 = PoseidonCommitment::commit_with(msg, Fr::from_u64(1));
  const Fr c2 = PoseidonCommitment::commit_with(msg, Fr::from_u64(2));
  EXPECT_NE(c1, c2);
}

// --- Schnorr ---

TEST(Schnorr, ConstantTimeLadderMatchesKeyDerivation) {
  // Keygen/signing now use the constant-time ladder; the public key it
  // derives must be the same group element the variable-time path
  // computes, so signatures interoperate across both.
  Drbg rng(77);
  const KeyPair kp = KeyPair::generate(rng);
  EXPECT_EQ(kp.pk, ec::G1::generator().mul(kp.sk));
  EXPECT_EQ(kp.pk, ec::G1::generator().mul_ct(kp.sk));
}

TEST(Schnorr, SignVerify) {
  Drbg rng(8);
  const KeyPair kp = KeyPair::generate(rng);
  const std::vector<std::uint8_t> msg{1, 2, 3, 4};
  const Signature sig = schnorr_sign(kp, msg, rng);
  EXPECT_TRUE(schnorr_verify(kp.pk, msg, sig));
}

TEST(Schnorr, RejectsTamperedMessage) {
  Drbg rng(9);
  const KeyPair kp = KeyPair::generate(rng);
  const std::vector<std::uint8_t> msg{1, 2, 3, 4};
  const Signature sig = schnorr_sign(kp, msg, rng);
  const std::vector<std::uint8_t> other{1, 2, 3, 5};
  EXPECT_FALSE(schnorr_verify(kp.pk, other, sig));
}

TEST(Schnorr, RejectsWrongKey) {
  Drbg rng(10);
  const KeyPair kp = KeyPair::generate(rng);
  const KeyPair other = KeyPair::generate(rng);
  const std::vector<std::uint8_t> msg{42};
  const Signature sig = schnorr_sign(kp, msg, rng);
  EXPECT_FALSE(schnorr_verify(other.pk, msg, sig));
}

TEST(Schnorr, RejectsTamperedSignature) {
  Drbg rng(11);
  const KeyPair kp = KeyPair::generate(rng);
  const std::vector<std::uint8_t> msg{42};
  Signature sig = schnorr_sign(kp, msg, rng);
  sig.s += Fr::one();
  EXPECT_FALSE(schnorr_verify(kp.pk, msg, sig));
  Signature sig2 = schnorr_sign(kp, msg, rng);
  sig2.r = sig2.r + ec::G1::generator();
  EXPECT_FALSE(schnorr_verify(kp.pk, msg, sig2));
}

TEST(Schnorr, RejectsIdentityKey) {
  Drbg rng(12);
  const KeyPair kp = KeyPair::generate(rng);
  const std::vector<std::uint8_t> msg{42};
  const Signature sig = schnorr_sign(kp, msg, rng);
  EXPECT_FALSE(schnorr_verify(ec::G1::identity(), msg, sig));
}

TEST(Schnorr, AddressFormat) {
  Drbg rng(13);
  const KeyPair kp = KeyPair::generate(rng);
  const std::string addr = address_of(kp.pk);
  EXPECT_EQ(addr.size(), 2u + 40u);
  EXPECT_EQ(addr.substr(0, 2), "0x");
  EXPECT_EQ(address_of(kp.pk), addr);  // stable
}

}  // namespace
}  // namespace zkdet::crypto
