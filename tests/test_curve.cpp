#include <gtest/gtest.h>

#include <random>

#include "ec/curve.hpp"
#include "ec/msm.hpp"
#include "ec/pairing.hpp"

namespace zkdet::ec {
namespace {

using ff::Fr;
using ff::random_field;

TEST(G1, GeneratorOnCurve) {
  EXPECT_TRUE(G1::generator().on_curve());
  EXPECT_TRUE(G1::identity().on_curve());
  EXPECT_TRUE(G1::identity().is_identity());
}

TEST(G1, GeneratorHasOrderR) {
  EXPECT_TRUE(G1::generator().mul(Fr::MOD).is_identity());
  EXPECT_FALSE(G1::generator().mul(ff::U256{12345}).is_identity());
}

TEST(G1, GroupLaws) {
  std::mt19937_64 rng(1);
  const G1 g = G1::generator();
  const G1 p = g.mul(random_field<Fr>(rng));
  const G1 q = g.mul(random_field<Fr>(rng));
  const G1 r = g.mul(random_field<Fr>(rng));
  EXPECT_EQ(p + q, q + p);
  EXPECT_EQ((p + q) + r, p + (q + r));
  EXPECT_EQ(p + G1::identity(), p);
  EXPECT_TRUE((p - p).is_identity());
  EXPECT_EQ(p.dbl(), p + p);
}

TEST(G1, ScalarMulLinearity) {
  std::mt19937_64 rng(2);
  const G1 g = G1::generator();
  const Fr a = random_field<Fr>(rng);
  const Fr b = random_field<Fr>(rng);
  EXPECT_EQ(g.mul(a + b), g.mul(a) + g.mul(b));
  EXPECT_EQ(g.mul(a * b), g.mul(a).mul(b));
  EXPECT_EQ(g.mul(Fr::zero()), G1::identity());
  EXPECT_EQ(g.mul(Fr::one()), g);
}

TEST(G1, AddMixedRepresentations) {
  // Same affine point through different Jacobian Z coordinates.
  const G1 g = G1::generator();
  const G1 doubled = g.dbl();         // non-trivial Z
  const G1 direct = g + g;
  EXPECT_EQ(doubled, direct);
  ff::Fp x1, y1, x2, y2;
  doubled.to_affine(x1, y1);
  direct.to_affine(x2, y2);
  EXPECT_EQ(x1, x2);
  EXPECT_EQ(y1, y2);
}

TEST(G1, OnCurveRejectsGarbage) {
  const G1 bad = G1::from_affine(ff::Fp::from_u64(5), ff::Fp::from_u64(5));
  EXPECT_FALSE(bad.on_curve());
}

TEST(G1, SerializationStable) {
  const auto b1 = g1_to_bytes(G1::generator());
  const auto b2 = g1_to_bytes(G1::generator().dbl() - G1::generator());
  EXPECT_EQ(b1, b2);
  EXPECT_EQ(b1.size(), 64u);
  const auto id = g1_to_bytes(G1::identity());
  EXPECT_TRUE(std::all_of(id.begin(), id.end(), [](auto b) { return b == 0; }));
}

TEST(G2, GeneratorOnCurve) {
  EXPECT_TRUE(G2::generator().on_curve());
}

TEST(G2, GeneratorHasOrderR) {
  EXPECT_TRUE(G2::generator().mul(Fr::MOD).is_identity());
}

TEST(G2, GroupLaws) {
  std::mt19937_64 rng(3);
  const G2 g = G2::generator();
  const G2 p = g.mul(random_field<Fr>(rng));
  const G2 q = g.mul(random_field<Fr>(rng));
  EXPECT_EQ(p + q, q + p);
  EXPECT_EQ(p.dbl(), p + p);
  EXPECT_TRUE((p - p).is_identity());
  EXPECT_EQ(g2_to_bytes(g).size(), 128u);
}

TEST(Msm, MatchesNaive) {
  std::mt19937_64 rng(4);
  const G1 g = G1::generator();
  for (const std::size_t n : {0u, 1u, 2u, 7u, 8u, 33u, 100u}) {
    std::vector<Fr> scalars(n);
    std::vector<G1> points(n);
    for (std::size_t i = 0; i < n; ++i) {
      scalars[i] = random_field<Fr>(rng);
      points[i] = g.mul(random_field<Fr>(rng));
    }
    EXPECT_EQ(msm(scalars, points), msm_naive(scalars, points)) << n;
  }
}

TEST(Msm, HandlesZeroScalars) {
  const G1 g = G1::generator();
  std::vector<Fr> scalars(20, Fr::zero());
  std::vector<G1> points(20, g);
  EXPECT_TRUE(msm(scalars, points).is_identity());
  scalars[7] = Fr::from_u64(3);
  EXPECT_EQ(msm(scalars, points), g.mul(Fr::from_u64(3)));
}

TEST(Msm, HandlesIdentityPoints) {
  std::mt19937_64 rng(5);
  std::vector<Fr> scalars(10);
  std::vector<G1> points(10, G1::identity());
  for (auto& s : scalars) s = random_field<Fr>(rng);
  EXPECT_TRUE(msm(scalars, points).is_identity());
}

TEST(Pairing, Bilinearity) {
  std::mt19937_64 rng(6);
  const G1 g = G1::generator();
  const G2 h = G2::generator();
  const Fr a = random_field<Fr>(rng);
  const Fr b = random_field<Fr>(rng);
  const ff::Fp12 lhs = pairing(g.mul(a), h.mul(b));
  const ff::Fp12 rhs = pairing(g, h).pow((a * b).to_canonical());
  EXPECT_EQ(lhs, rhs);
}

TEST(Pairing, BilinearInEachSlot) {
  const G1 g = G1::generator();
  const G2 h = G2::generator();
  const Fr a = Fr::from_u64(5);
  EXPECT_EQ(pairing(g.mul(a), h), pairing(g, h.mul(a)));
  // e(P+Q, R) = e(P,R) e(Q,R)
  const G1 p = g.mul(Fr::from_u64(3));
  const G1 q = g.mul(Fr::from_u64(8));
  EXPECT_EQ(pairing(p + q, h), pairing(p, h) * pairing(q, h));
}

TEST(Pairing, NonDegenerate) {
  const ff::Fp12 e = pairing(G1::generator(), G2::generator());
  EXPECT_FALSE(e.is_one());
  EXPECT_FALSE(e.is_zero());
  // e lies in the order-r subgroup: e^r == 1
  EXPECT_TRUE(e.pow(Fr::MOD).is_one());
}

TEST(Pairing, IdentityInputs) {
  EXPECT_TRUE(pairing(G1::identity(), G2::generator()).is_one());
  EXPECT_TRUE(pairing(G1::generator(), G2::identity()).is_one());
}

TEST(Pairing, ProductCheck) {
  std::mt19937_64 rng(7);
  const G1 g = G1::generator();
  const G2 h = G2::generator();
  const Fr a = random_field<Fr>(rng);
  const Fr b = random_field<Fr>(rng);
  // e(aG, bH) e(-(ab)G, H) == 1
  EXPECT_TRUE(pairing_product_is_one(g.mul(a), h.mul(b), -g.mul(a * b), h));
  // and a wrong product is caught
  EXPECT_FALSE(
      pairing_product_is_one(g.mul(a), h.mul(b), -g.mul(a * b + Fr::one()), h));
}

class PairingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PairingSweep, ScalarCompatibility) {
  const Fr s = Fr::from_u64(GetParam());
  const G1 g = G1::generator();
  const G2 h = G2::generator();
  EXPECT_EQ(pairing(g.mul(s), h), pairing(g, h).pow(s.to_canonical()));
}

INSTANTIATE_TEST_SUITE_P(SmallScalars, PairingSweep,
                         ::testing::Values(1, 2, 3, 7, 65537));

}  // namespace
}  // namespace zkdet::ec
