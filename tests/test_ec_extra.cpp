#include <gtest/gtest.h>

#include <random>

#include "ec/msm.hpp"

namespace zkdet::ec {
namespace {

using ff::Fr;
using ff::random_field;

TEST(FixedBase, G1MatchesGenericMul) {
  std::mt19937_64 rng(1);
  EXPECT_EQ(g1_mul_generator(Fr::zero()), G1::identity());
  EXPECT_EQ(g1_mul_generator(Fr::one()), G1::generator());
  for (int i = 0; i < 20; ++i) {
    const Fr k = random_field<Fr>(rng);
    EXPECT_EQ(g1_mul_generator(k), G1::generator().mul(k));
  }
}

TEST(FixedBase, G2MatchesGenericMul) {
  std::mt19937_64 rng(2);
  EXPECT_EQ(g2_mul_generator(Fr::zero()), G2::identity());
  EXPECT_EQ(g2_mul_generator(Fr::one()), G2::generator());
  for (int i = 0; i < 10; ++i) {
    const Fr k = random_field<Fr>(rng);
    EXPECT_EQ(g2_mul_generator(k), G2::generator().mul(k));
  }
}

TEST(FixedBase, ByteBoundaryScalars) {
  // scalars that exercise single window entries and carries
  for (const std::uint64_t v : {255ull, 256ull, 257ull, 65535ull, 65536ull}) {
    const Fr k = Fr::from_u64(v);
    EXPECT_EQ(g1_mul_generator(k), G1::generator().mul(k)) << v;
  }
}

TEST(MsmG2, MatchesNaiveSum) {
  std::mt19937_64 rng(3);
  for (const std::size_t n : {0u, 1u, 5u, 9u, 40u}) {
    std::vector<Fr> scalars(n);
    std::vector<G2> points(n);
    G2 expect = G2::identity();
    for (std::size_t i = 0; i < n; ++i) {
      scalars[i] = random_field<Fr>(rng);
      points[i] = G2::generator().mul(random_field<Fr>(rng));
      expect += points[i].mul(scalars[i]);
    }
    EXPECT_EQ(msm_g2(scalars, points), expect) << n;
  }
}

TEST(MsmG1, LargeRandomInstance) {
  std::mt19937_64 rng(4);
  const std::size_t n = 300;
  std::vector<Fr> scalars(n);
  std::vector<G1> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    scalars[i] = random_field<Fr>(rng);
    points[i] = g1_mul_generator(random_field<Fr>(rng));
  }
  EXPECT_EQ(msm(scalars, points), msm_naive(scalars, points));
}

TEST(MsmG1, LinearInScalars) {
  // msm(a + b, P) == msm(a, P) + msm(b, P)
  std::mt19937_64 rng(5);
  const std::size_t n = 20;
  std::vector<Fr> a(n), b(n), ab(n);
  std::vector<G1> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = random_field<Fr>(rng);
    b[i] = random_field<Fr>(rng);
    ab[i] = a[i] + b[i];
    points[i] = g1_mul_generator(random_field<Fr>(rng));
  }
  EXPECT_EQ(msm(ab, points), msm(a, points) + msm(b, points));
}

}  // namespace
}  // namespace zkdet::ec
