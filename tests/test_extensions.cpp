#include <gtest/gtest.h>

#include <random>

#include "ff/fp12.hpp"

namespace zkdet::ff {
namespace {

Fp2 random_fp2(std::mt19937_64& rng) {
  return Fp2{random_field<Fp>(rng), random_field<Fp>(rng)};
}

Fp12 random_fp12(std::mt19937_64& rng) {
  Fp12 x;
  for (auto& c : x.c) c = random_fp2(rng);
  return x;
}

TEST(Fp2, FieldAxioms) {
  std::mt19937_64 rng(1);
  for (int i = 0; i < 50; ++i) {
    const Fp2 a = random_fp2(rng);
    const Fp2 b = random_fp2(rng);
    const Fp2 c = random_fp2(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a.square(), a * a);
  }
}

TEST(Fp2, UnitSquaresToMinusOne) {
  const Fp2 u{Fp::zero(), Fp::one()};
  const Fp2 minus_one{-Fp::one(), Fp::zero()};
  EXPECT_EQ(u.square(), minus_one);
}

TEST(Fp2, Inverse) {
  std::mt19937_64 rng(2);
  for (int i = 0; i < 50; ++i) {
    const Fp2 a = random_fp2(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.inverse(), Fp2::one());
  }
  EXPECT_TRUE(Fp2::zero().inverse().is_zero());
}

TEST(Fp2, ConjugateIsFrobenius) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 10; ++i) {
    const Fp2 a = random_fp2(rng);
    EXPECT_EQ(a.frobenius(), a.pow(Fp::MOD));
  }
}

TEST(Fp2, ConjugateMultiplicative) {
  std::mt19937_64 rng(4);
  const Fp2 a = random_fp2(rng);
  const Fp2 b = random_fp2(rng);
  EXPECT_EQ((a * b).conjugate(), a.conjugate() * b.conjugate());
}

TEST(Fp12, RingAxioms) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 20; ++i) {
    const Fp12 a = random_fp12(rng);
    const Fp12 b = random_fp12(rng);
    const Fp12 c = random_fp12(rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * Fp12::one(), a);
  }
}

TEST(Fp12, Inverse) {
  std::mt19937_64 rng(6);
  for (int i = 0; i < 20; ++i) {
    const Fp12 a = random_fp12(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.inverse(), Fp12::one());
  }
}

TEST(Fp12, FrobeniusIsPthPower) {
  std::mt19937_64 rng(7);
  const Fp12 a = random_fp12(rng);
  EXPECT_EQ(a.frobenius(1), a.pow(Fp::MOD));
}

TEST(Fp12, FrobeniusOrder12) {
  std::mt19937_64 rng(8);
  const Fp12 a = random_fp12(rng);
  EXPECT_EQ(a.frobenius(12), a);
  EXPECT_NE(a.frobenius(6), a);  // overwhelmingly likely for random a
}

TEST(Fp12, FrobeniusIsRingHomomorphism) {
  std::mt19937_64 rng(9);
  const Fp12 a = random_fp12(rng);
  const Fp12 b = random_fp12(rng);
  EXPECT_EQ((a * b).frobenius(1), a.frobenius(1) * b.frobenius(1));
  EXPECT_EQ((a + b).frobenius(1), a.frobenius(1) + b.frobenius(1));
}

TEST(Fp12, MulLineMatchesFullMul) {
  std::mt19937_64 rng(10);
  for (int i = 0; i < 20; ++i) {
    const Fp12 a = random_fp12(rng);
    const Fp2 l0 = random_fp2(rng);
    const Fp2 l2 = random_fp2(rng);
    const Fp2 l3 = random_fp2(rng);
    Fp12 line;
    line.c[0] = l0;
    line.c[2] = l2;
    line.c[3] = l3;
    EXPECT_EQ(a.mul_line(l0, l2, l3), a * line);
  }
}

TEST(Fp12, PowSmallExponents) {
  std::mt19937_64 rng(11);
  const Fp12 a = random_fp12(rng);
  EXPECT_EQ(a.pow(U256{0}), Fp12::one());
  EXPECT_EQ(a.pow(U256{1}), a);
  EXPECT_EQ(a.pow(U256{2}), a.square());
  EXPECT_EQ(a.pow(U256{3}), a * a * a);
}

TEST(Fp12, PowBigUIntMatchesU256) {
  std::mt19937_64 rng(12);
  const Fp12 a = random_fp12(rng);
  const U256 e{0xdeadbeef12345678ull, 0x42, 0, 0};
  EXPECT_EQ(a.pow(e), a.pow(BigUInt::from_u256(e)));
}

}  // namespace
}  // namespace zkdet::ff
