#include "ff/bn254.hpp"

#include <gtest/gtest.h>

#include <random>

#include "ff/bigint.hpp"

namespace zkdet::ff {
namespace {

TEST(Field, Identities) {
  EXPECT_TRUE(Fr::zero().is_zero());
  EXPECT_EQ(Fr::one() * Fr::one(), Fr::one());
  EXPECT_EQ(Fr::one() + Fr::zero(), Fr::one());
  EXPECT_EQ(Fr::from_u64(5) - Fr::from_u64(5), Fr::zero());
}

TEST(Field, CanonicalRoundtrip) {
  std::mt19937_64 rng(1);
  for (int i = 0; i < 200; ++i) {
    const Fr x = random_field<Fr>(rng);
    EXPECT_EQ(Fr::from_canonical(x.to_canonical()), x);
  }
}

TEST(Field, FromDecMatchesFromU64) {
  EXPECT_EQ(Fr::from_dec("123456789"), Fr::from_u64(123456789));
  EXPECT_EQ(Fp::from_dec("0"), Fp::zero());
}

TEST(Field, FromDecReducesModulus) {
  // r itself reduces to zero
  EXPECT_EQ(Fr::from_dec("218882428718392752222464057452572750885483644004160"
                         "34343698204186575808495617"),
            Fr::zero());
}

TEST(Field, AdditionIsCommutativeAssociative) {
  std::mt19937_64 rng(2);
  for (int i = 0; i < 100; ++i) {
    const Fr a = random_field<Fr>(rng);
    const Fr b = random_field<Fr>(rng);
    const Fr c = random_field<Fr>(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
  }
}

TEST(Field, MultiplicationDistributes) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 100; ++i) {
    const Fr a = random_field<Fr>(rng);
    const Fr b = random_field<Fr>(rng);
    const Fr c = random_field<Fr>(rng);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
  }
}

TEST(Field, NegationAndSubtraction) {
  std::mt19937_64 rng(4);
  for (int i = 0; i < 100; ++i) {
    const Fr a = random_field<Fr>(rng);
    EXPECT_TRUE((a + (-a)).is_zero());
    EXPECT_EQ(Fr::zero() - a, -a);
  }
  EXPECT_EQ(-Fr::zero(), Fr::zero());
}

TEST(Field, InverseProperty) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 100; ++i) {
    Fr a = random_field<Fr>(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.inverse(), Fr::one());
  }
  // inverse of zero defined as zero
  EXPECT_TRUE(Fr::zero().inverse().is_zero());
}

TEST(Field, SquareMatchesMul) {
  std::mt19937_64 rng(6);
  for (int i = 0; i < 100; ++i) {
    const Fr a = random_field<Fr>(rng);
    EXPECT_EQ(a.square(), a * a);
    EXPECT_EQ(a.dbl(), a + a);
  }
}

TEST(Field, PowMatchesRepeatedMul) {
  const Fr a = Fr::from_u64(3);
  Fr expected = Fr::one();
  for (std::uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(a.pow(U256{e}), expected);
    expected *= a;
  }
}

TEST(Field, FermatLittleTheorem) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20; ++i) {
    const Fr a = random_field<Fr>(rng);
    if (a.is_zero()) continue;
    U256 e;
    u256_sub(e, Fr::MOD, U256{1});
    EXPECT_EQ(a.pow(e), Fr::one());  // a^(r-1) = 1
  }
}

TEST(Field, GeneratorHasFullOrderSignals) {
  // 5^((r-1)/2) must be -1 for a generator (odd part check is implied by
  // the two-adic root test below).
  U256 e;
  u256_sub(e, Fr::MOD, U256{1});
  for (std::size_t j = 0; j < 4; ++j) {
    e.limb[j] >>= 1;
    if (j + 1 < 4) e.limb[j] |= e.limb[j + 1] << 63;
  }
  EXPECT_EQ(Fr::generator().pow(e), -Fr::one());
}

TEST(Field, TwoAdicRoot) {
  const Fr root = Fr::two_adic_root();
  Fr x = root;
  for (std::size_t i = 0; i < Fr::TWO_ADICITY - 1; ++i) x = x.square();
  EXPECT_EQ(x, -Fr::one());
  EXPECT_EQ(x.square(), Fr::one());
}

TEST(Field, BaseFieldModulusDiffersFromScalar) {
  EXPECT_NE(Fp::MOD, Fr::MOD);
  // p > r for BN254
  EXPECT_TRUE(u256_less(Fr::MOD, Fp::MOD));
}

TEST(Field, ReduceFromLargeValue) {
  U256 big = Fr::MOD;
  U256 plus5{};
  u256_add(plus5, big, U256{5});
  EXPECT_EQ(Fr::reduce_from(plus5), Fr::from_u64(5));
}

TEST(BigUInt, MulAndDivide) {
  BigUInt n = BigUInt::from_u64(1);
  const U256 p = Fp::MOD;
  for (int i = 0; i < 3; ++i) n.mul_u256(p);
  // n = p^3; divide back down
  U256 rem{};
  BigUInt q = bigint_div_u256(n, p, &rem);
  EXPECT_TRUE(rem.is_zero());
  U256 rem2{};
  BigUInt q2 = bigint_div_u256(q, p, &rem2);
  EXPECT_TRUE(rem2.is_zero());
  U256 rem3{};
  BigUInt q3 = bigint_div_u256(q2, p, &rem3);
  EXPECT_TRUE(rem3.is_zero());
  EXPECT_EQ(q3.bit_length(), 1u);  // quotient 1
}

TEST(BigUInt, DivisionByFull256BitDivisor) {
  // Divisors with the top bit set used to overflow the shift-subtract
  // remainder (rem < d can exceed 2^255); found by fuzz_u256.
  const U256 d{0x4773a10690536de1ull, 0x1d7bb3f81dbf08e6ull,
               0x9d42b4777f4d0d75ull, 0xdfde7dfff2a166b4ull};
  const U256 x{0xd5429235bf24984full, 0x67dd1a329c0f8394ull,
               0xd7de0f6de56c68acull, 0x8a73554957bf8a0full};
  BigUInt n = BigUInt::from_u256(x);
  n.mul_u256(d);
  U256 rem{};
  const BigUInt q = bigint_div_u256(n, d, &rem);
  EXPECT_TRUE(rem.is_zero());
  BigUInt back = q;
  back.mul_u256(d);
  for (std::size_t i = 0; i < std::max(back.limbs.size(), n.limbs.size());
       ++i) {
    const std::uint64_t b = i < back.limbs.size() ? back.limbs[i] : 0;
    const std::uint64_t e = i < n.limbs.size() ? n.limbs[i] : 0;
    EXPECT_EQ(b, e) << "limb " << i;
  }
}

TEST(BigUInt, DivisionRemainder) {
  BigUInt n = BigUInt::from_u64(1000);
  U256 rem{};
  BigUInt q = bigint_div_u256(n, U256{7}, &rem);
  EXPECT_EQ(rem, U256{6});  // 1000 = 142*7 + 6
  EXPECT_TRUE(q.bit(1));    // 142 = 0b10001110
  EXPECT_EQ(q.bit_length(), 8u);
}

TEST(BigUInt, SubU64) {
  BigUInt n = BigUInt::from_u64(0);
  n.limbs = {0, 1};  // 2^64
  n.sub_u64(1);
  EXPECT_EQ(n.limbs[0], ~0ull);
  EXPECT_EQ(n.limbs[1], 0u);
}

class FieldSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FieldSeedSweep, MulInverseRandom) {
  std::mt19937_64 rng(GetParam());
  const Fr a = random_field<Fr>(rng);
  const Fr b = random_field<Fr>(rng);
  if (b.is_zero()) return;
  const Fr q = a * b.inverse();
  EXPECT_EQ(q * b, a);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FieldSeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace zkdet::ff
