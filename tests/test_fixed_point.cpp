#include <gtest/gtest.h>

#include <cmath>

#include "gadgets/fixed_point.hpp"

namespace zkdet::gadgets {
namespace {

using ff::Fr;

const FixParams kP{};  // 16.24 default

TEST(FixedPoint, EncodeDecodeRoundtrip) {
  for (const double v : {0.0, 1.0, -1.0, 3.14159, -2.71828, 1000.5, -999.25}) {
    EXPECT_NEAR(fix_decode(fix_encode(v, kP), kP), v, 1e-4) << v;
  }
}

TEST(FixedPoint, EncodeIsLinear) {
  const Fr a = fix_encode(1.5, kP);
  const Fr b = fix_encode(2.25, kP);
  EXPECT_EQ(a + b, fix_encode(3.75, kP));
  EXPECT_EQ(-a, fix_encode(-1.5, kP));
}

struct BinCase {
  double a, b;
};

class FixMulSweep : public ::testing::TestWithParam<BinCase> {};

TEST_P(FixMulSweep, MulMatchesDouble) {
  const auto [av, bv] = GetParam();
  CircuitBuilder bld;
  FixOps fx(bld, kP);
  const Wire a = bld.add_witness(fix_encode(av, kP));
  const Wire b = bld.add_witness(fix_encode(bv, kP));
  const Wire c = fx.mul(a, b);
  EXPECT_NEAR(fx.decode(c), av * bv, 1e-3);
  EXPECT_TRUE(bld.witness_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FixMulSweep,
    ::testing::Values(BinCase{2.0, 3.0}, BinCase{-2.0, 3.0},
                      BinCase{-2.5, -4.0}, BinCase{0.0, 5.0},
                      BinCase{0.125, 0.125}, BinCase{100.0, -0.01},
                      BinCase{1000.0, 1000.0}));

TEST(FixedPoint, MulConst) {
  CircuitBuilder bld;
  FixOps fx(bld, kP);
  const Wire a = bld.add_witness(fix_encode(3.0, kP));
  EXPECT_NEAR(fx.decode(fx.mul_const(a, -1.5)), -4.5, 1e-3);
  EXPECT_TRUE(bld.witness_consistent());
}

TEST(FixedPoint, SquareIsNonNegative) {
  CircuitBuilder bld;
  FixOps fx(bld, kP);
  const Wire a = bld.add_witness(fix_encode(-3.0, kP));
  EXPECT_NEAR(fx.decode(fx.square(a)), 9.0, 1e-3);
  EXPECT_TRUE(bld.witness_consistent());
}

TEST(FixedPoint, Inner) {
  CircuitBuilder bld;
  FixOps fx(bld, kP);
  std::vector<Wire> a, b;
  const double av[] = {1.5, -2.0, 0.5};
  const double bv[] = {2.0, 1.0, -4.0};
  double expect = 0;
  for (int i = 0; i < 3; ++i) {
    a.push_back(bld.add_witness(fix_encode(av[i], kP)));
    b.push_back(bld.add_witness(fix_encode(bv[i], kP)));
    expect += av[i] * bv[i];
  }
  EXPECT_NEAR(fx.decode(fx.inner(a, b)), expect, 1e-3);
  EXPECT_TRUE(bld.witness_consistent());
}

TEST(FixedPoint, AffineConst) {
  CircuitBuilder bld;
  FixOps fx(bld, kP);
  std::vector<Wire> x;
  const double xs[] = {1.0, -2.0, 3.0};
  const double ws[] = {0.5, 0.25, -1.0};
  for (const double v : xs) x.push_back(bld.add_witness(fix_encode(v, kP)));
  const Wire out = fx.affine_const(x, ws, 10.0);
  EXPECT_NEAR(fx.decode(out), 0.5 - 0.5 - 3.0 + 10.0, 1e-3);
  EXPECT_TRUE(bld.witness_consistent());
}

TEST(FixedPoint, DivNonneg) {
  CircuitBuilder bld;
  FixOps fx(bld, kP);
  const Wire a = bld.add_witness(fix_encode(7.5, kP));
  const Wire b = bld.add_witness(fix_encode(2.5, kP));
  EXPECT_NEAR(fx.decode(fx.div_nonneg(a, b)), 3.0, 1e-3);
  EXPECT_TRUE(bld.witness_consistent());
}

TEST(FixedPoint, DivByTiny) {
  CircuitBuilder bld;
  FixOps fx(bld, kP);
  const Wire a = bld.add_witness(fix_encode(1.0, kP));
  const Wire b = bld.add_witness(fix_encode(0.25, kP));
  EXPECT_NEAR(fx.decode(fx.div_nonneg(a, b)), 4.0, 1e-3);
  EXPECT_TRUE(bld.witness_consistent());
}

TEST(FixedPoint, ReluAbsSign) {
  CircuitBuilder bld;
  FixOps fx(bld, kP);
  const Wire pos = bld.add_witness(fix_encode(2.5, kP));
  const Wire neg = bld.add_witness(fix_encode(-2.5, kP));
  EXPECT_NEAR(fx.decode(fx.relu(pos)), 2.5, 1e-4);
  EXPECT_NEAR(fx.decode(fx.relu(neg)), 0.0, 1e-4);
  EXPECT_NEAR(fx.decode(fx.abs(neg)), 2.5, 1e-4);
  EXPECT_EQ(bld.value(fx.sign_bit(pos)), Fr::one());
  EXPECT_EQ(bld.value(fx.sign_bit(neg)), Fr::zero());
  EXPECT_TRUE(bld.witness_consistent());
}

TEST(FixedPoint, ReluAtZero) {
  CircuitBuilder bld;
  FixOps fx(bld, kP);
  const Wire z = bld.add_witness(fix_encode(0.0, kP));
  EXPECT_NEAR(fx.decode(fx.relu(z)), 0.0, 1e-9);
  EXPECT_TRUE(bld.witness_consistent());
}

TEST(FixedPoint, AssertNonnegRejectsNegative) {
  CircuitBuilder bld;
  FixOps fx(bld, kP);
  const Wire neg = bld.add_witness(fix_encode(-1.0, kP));
  fx.assert_nonneg(neg);
  EXPECT_FALSE(bld.witness_consistent());
}

class SigmoidSweep : public ::testing::TestWithParam<double> {};

TEST_P(SigmoidSweep, ApproximatesSigmoid) {
  const double x = GetParam();
  CircuitBuilder bld;
  FixOps fx(bld, kP);
  const Wire xw = bld.add_witness(fix_encode(x, kP));
  const Wire y = fx.sigmoid(xw);
  const double expect = 1.0 / (1.0 + std::exp(-x));
  EXPECT_NEAR(fx.decode(y), expect, 0.02) << x;
  EXPECT_TRUE(bld.witness_consistent());
}

INSTANTIATE_TEST_SUITE_P(Points, SigmoidSweep,
                         ::testing::Values(-20.0, -8.0, -3.5, -1.0, -0.1, 0.0,
                                           0.1, 1.0, 3.5, 7.9, 20.0));

class ExpSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExpSweep, ApproximatesExp) {
  const double x = GetParam();
  CircuitBuilder bld;
  FixOps fx(bld, kP);
  const Wire xw = bld.add_witness(fix_encode(x, kP));
  const Wire y = fx.exp(xw);
  EXPECT_NEAR(fx.decode(y), std::exp(x), std::exp(x) * 0.05 + 0.02) << x;
  EXPECT_TRUE(bld.witness_consistent());
}

INSTANTIATE_TEST_SUITE_P(Points, ExpSweep,
                         ::testing::Values(-11.0, -5.0, -1.0, 0.0, 0.5, 1.0,
                                           2.0, 3.9));

TEST(FixedPoint, ExpClampsOutOfRange) {
  CircuitBuilder bld;
  FixOps fx(bld, kP);
  const Wire big = bld.add_witness(fix_encode(10.0, kP));  // above domain
  const Wire y = fx.exp(big);
  EXPECT_NEAR(fx.decode(y), std::exp(4.0), std::exp(4.0) * 0.05);
  EXPECT_TRUE(bld.witness_consistent());
}

TEST(FixedPoint, RescaleCannotBeForged) {
  // Tampering the quotient witness of a mul must break a constraint.
  CircuitBuilder bld;
  FixOps fx(bld, kP);
  const Wire a = bld.add_witness(fix_encode(2.0, kP));
  const Wire b = bld.add_witness(fix_encode(3.0, kP));
  const Wire c = fx.mul(a, b);
  std::vector<Fr> forged = bld.witness();
  forged[c.var] += Fr::one();
  EXPECT_FALSE(bld.cs().is_satisfied(forged));
}

}  // namespace
}  // namespace zkdet::gadgets
