#include <gtest/gtest.h>

#include "crypto/mimc.hpp"
#include "crypto/rng.hpp"
#include "crypto/poseidon.hpp"
#include "gadgets/builder.hpp"
#include "gadgets/hash_gadgets.hpp"

namespace zkdet::gadgets {
namespace {

using ff::Fr;

TEST(Builder, ArithmeticTracksValues) {
  CircuitBuilder bld;
  const Wire a = bld.add_witness(Fr::from_u64(7));
  const Wire b = bld.add_witness(Fr::from_u64(5));
  EXPECT_EQ(bld.value(bld.add(a, b)), Fr::from_u64(12));
  EXPECT_EQ(bld.value(bld.sub(a, b)), Fr::from_u64(2));
  EXPECT_EQ(bld.value(bld.mul(a, b)), Fr::from_u64(35));
  EXPECT_EQ(bld.value(bld.neg(a)), -Fr::from_u64(7));
  EXPECT_EQ(bld.value(bld.scale(a, Fr::from_u64(3))), Fr::from_u64(21));
  EXPECT_EQ(bld.value(bld.add_constant(a, Fr::from_u64(100))),
            Fr::from_u64(107));
  EXPECT_EQ(bld.value(bld.mul_add(a, b, a)), Fr::from_u64(42));
  EXPECT_TRUE(bld.witness_consistent());
}

TEST(Builder, ConstantsAndZero) {
  CircuitBuilder bld;
  EXPECT_EQ(bld.value(bld.zero()), Fr::zero());
  EXPECT_EQ(bld.value(bld.one()), Fr::one());
  EXPECT_EQ(bld.value(bld.constant(Fr::from_u64(42))), Fr::from_u64(42));
  EXPECT_TRUE(bld.witness_consistent());
}

TEST(Builder, SumAndInnerProduct) {
  CircuitBuilder bld;
  std::vector<Wire> xs, ys;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    xs.push_back(bld.add_witness(Fr::from_u64(i)));
    ys.push_back(bld.add_witness(Fr::from_u64(i * 10)));
  }
  EXPECT_EQ(bld.value(bld.sum(xs)), Fr::from_u64(15));
  // 1*10 + 2*20 + 3*30 + 4*40 + 5*50 = 550
  EXPECT_EQ(bld.value(bld.inner_product(xs, ys)), Fr::from_u64(550));
  EXPECT_TRUE(bld.witness_consistent());
}

TEST(Builder, AssertionsHoldAndBreak) {
  {
    CircuitBuilder bld;
    const Wire a = bld.add_witness(Fr::from_u64(5));
    bld.assert_constant(a, Fr::from_u64(5));
    EXPECT_TRUE(bld.witness_consistent());
  }
  {
    CircuitBuilder bld;
    const Wire a = bld.add_witness(Fr::from_u64(5));
    bld.assert_constant(a, Fr::from_u64(6));  // wrong
    EXPECT_FALSE(bld.witness_consistent());
  }
  {
    CircuitBuilder bld;
    const Wire a = bld.add_witness(Fr::from_u64(2));
    bld.assert_bool(a);  // 2 is not boolean
    EXPECT_FALSE(bld.witness_consistent());
  }
}

TEST(Builder, LogicGates) {
  for (const std::uint64_t av : {0u, 1u}) {
    for (const std::uint64_t bv : {0u, 1u}) {
      CircuitBuilder bld;
      const Wire a = bld.add_witness(Fr::from_u64(av));
      const Wire b = bld.add_witness(Fr::from_u64(bv));
      EXPECT_EQ(bld.value(bld.logic_and(a, b)), Fr::from_u64(av & bv));
      EXPECT_EQ(bld.value(bld.logic_or(a, b)), Fr::from_u64(av | bv));
      EXPECT_EQ(bld.value(bld.logic_xor(a, b)), Fr::from_u64(av ^ bv));
      EXPECT_EQ(bld.value(bld.logic_not(a)), Fr::from_u64(1 - av));
      EXPECT_TRUE(bld.witness_consistent());
    }
  }
}

TEST(Builder, Select) {
  CircuitBuilder bld;
  const Wire t = bld.add_witness(Fr::from_u64(10));
  const Wire f = bld.add_witness(Fr::from_u64(20));
  const Wire c1 = bld.add_witness(Fr::one());
  const Wire c0 = bld.add_witness(Fr::zero());
  EXPECT_EQ(bld.value(bld.select(c1, t, f)), Fr::from_u64(10));
  EXPECT_EQ(bld.value(bld.select(c0, t, f)), Fr::from_u64(20));
  EXPECT_TRUE(bld.witness_consistent());
}

TEST(Builder, IsZeroAndIsEqual) {
  CircuitBuilder bld;
  const Wire z = bld.add_witness(Fr::zero());
  const Wire nz = bld.add_witness(Fr::from_u64(77));
  EXPECT_EQ(bld.value(bld.is_zero(z)), Fr::one());
  EXPECT_EQ(bld.value(bld.is_zero(nz)), Fr::zero());
  const Wire a = bld.add_witness(Fr::from_u64(5));
  const Wire b = bld.add_witness(Fr::from_u64(5));
  const Wire c = bld.add_witness(Fr::from_u64(6));
  EXPECT_EQ(bld.value(bld.is_equal(a, b)), Fr::one());
  EXPECT_EQ(bld.value(bld.is_equal(a, c)), Fr::zero());
  EXPECT_TRUE(bld.witness_consistent());
}

TEST(Builder, IsZeroCannotBeForged) {
  // A dishonest witness claiming 77 == 0 must violate a constraint. We
  // emulate by rebuilding the witness vector with a flipped output bit.
  CircuitBuilder bld;
  const Wire nz = bld.add_witness(Fr::from_u64(77));
  const Wire out = bld.is_zero(nz);
  std::vector<Fr> forged = bld.witness();
  forged[out.var] = Fr::one();  // claim "is zero"
  EXPECT_FALSE(bld.cs().is_satisfied(forged));
}

TEST(Builder, BitsRoundtrip) {
  CircuitBuilder bld;
  const Wire a = bld.add_witness(Fr::from_u64(0b1011011));
  const auto bits = bld.to_bits(a, 8);
  ASSERT_EQ(bits.size(), 8u);
  EXPECT_EQ(bld.value(bits[0]), Fr::one());
  EXPECT_EQ(bld.value(bits[2]), Fr::zero());
  const Wire back = bld.from_bits(bits);
  EXPECT_EQ(bld.value(back), Fr::from_u64(0b1011011));
  EXPECT_TRUE(bld.witness_consistent());
}

TEST(Builder, RangeCheckRejectsOverflow) {
  CircuitBuilder bld;
  const Wire a = bld.add_witness(Fr::from_u64(256));
  bld.assert_range(a, 8);  // 256 needs 9 bits
  EXPECT_FALSE(bld.witness_consistent());
}

TEST(Builder, Comparisons) {
  const auto check = [](std::uint64_t x, std::uint64_t y, bool expect_lt) {
    CircuitBuilder bld;
    const Wire a = bld.add_witness(Fr::from_u64(x));
    const Wire b = bld.add_witness(Fr::from_u64(y));
    const Wire lt = bld.less_than(a, b, 16);
    EXPECT_EQ(bld.value(lt), expect_lt ? Fr::one() : Fr::zero())
        << x << " < " << y;
    EXPECT_TRUE(bld.witness_consistent());
  };
  check(3, 5, true);
  check(5, 3, false);
  check(4, 4, false);
  check(0, 1, true);
  check(65535, 65535, false);
  check(0, 65535, true);
}

TEST(Builder, AssertLeq) {
  {
    CircuitBuilder bld;
    const Wire a = bld.add_witness(Fr::from_u64(7));
    const Wire b = bld.add_witness(Fr::from_u64(7));
    bld.assert_leq(a, b, 8);
    EXPECT_TRUE(bld.witness_consistent());
  }
  {
    CircuitBuilder bld;
    const Wire a = bld.add_witness(Fr::from_u64(8));
    const Wire b = bld.add_witness(Fr::from_u64(7));
    bld.assert_leq(a, b, 8);
    EXPECT_FALSE(bld.witness_consistent());
  }
}

// --- hash gadget / native consistency (the load-bearing property: what
// is proven in-circuit is exactly what the protocol computes natively) ---

class HashGadgetSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HashGadgetSweep, MimcMatchesNative) {
  crypto::Drbg rng(GetParam());
  const Fr k = rng.random_fr();
  const Fr m = rng.random_fr();
  CircuitBuilder bld;
  const Wire kw = bld.add_witness(k);
  const Wire mw = bld.add_witness(m);
  const Wire out = mimc_block_gadget(bld, kw, mw);
  EXPECT_EQ(bld.value(out), crypto::mimc_encrypt_block(k, m));
  EXPECT_TRUE(bld.witness_consistent());
}

TEST_P(HashGadgetSweep, MimcCtrMatchesNative) {
  crypto::Drbg rng(GetParam() + 100);
  const Fr k = rng.random_fr();
  const Fr nonce = rng.random_fr();
  std::vector<Fr> plain;
  for (int i = 0; i < 3; ++i) plain.push_back(rng.random_fr());
  CircuitBuilder bld;
  const Wire kw = bld.add_witness(k);
  const Wire nw = bld.add_witness(nonce);
  std::vector<Wire> pw;
  for (const Fr& p : plain) pw.push_back(bld.add_witness(p));
  const auto ct = mimc_ctr_encrypt_gadget(bld, kw, nw, pw);
  const auto native = crypto::mimc_ctr_encrypt(k, nonce, plain);
  ASSERT_EQ(ct.size(), native.size());
  for (std::size_t i = 0; i < ct.size(); ++i) {
    EXPECT_EQ(bld.value(ct[i]), native[i]);
  }
  EXPECT_TRUE(bld.witness_consistent());
}

TEST_P(HashGadgetSweep, PoseidonMatchesNative) {
  crypto::Drbg rng(GetParam() + 200);
  for (const std::size_t len : {1u, 2u, 3u, 5u}) {
    std::vector<Fr> input;
    for (std::size_t i = 0; i < len; ++i) input.push_back(rng.random_fr());
    CircuitBuilder bld;
    std::vector<Wire> iw;
    for (const Fr& x : input) iw.push_back(bld.add_witness(x));
    const Wire out = poseidon_hash_gadget(bld, iw, /*domain_tag=*/9);
    EXPECT_EQ(bld.value(out), crypto::poseidon_hash(input, 9));
    EXPECT_TRUE(bld.witness_consistent());
  }
}

TEST_P(HashGadgetSweep, PoseidonCommitMatchesNative) {
  crypto::Drbg rng(GetParam() + 300);
  std::vector<Fr> msg{rng.random_fr(), rng.random_fr(), rng.random_fr()};
  const Fr blinder = rng.random_fr();
  CircuitBuilder bld;
  std::vector<Wire> mw;
  for (const Fr& m : msg) mw.push_back(bld.add_witness(m));
  const Wire bw = bld.add_witness(blinder);
  const Wire c = poseidon_commit_gadget(bld, mw, bw);
  EXPECT_EQ(bld.value(c), crypto::PoseidonCommitment::commit_with(msg, blinder));
  EXPECT_TRUE(bld.witness_consistent());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashGadgetSweep, ::testing::Values(1, 2, 3));

TEST(MerkleGadget, RootMatchesNative) {
  crypto::Drbg rng(9);
  // depth-3 tree over 8 leaves, verify leaf 5's path
  std::vector<Fr> leaves;
  for (int i = 0; i < 8; ++i) leaves.push_back(rng.random_fr());
  std::vector<Fr> level = leaves;
  std::vector<std::vector<Fr>> levels{level};
  while (level.size() > 1) {
    std::vector<Fr> next;
    for (std::size_t i = 0; i < level.size(); i += 2) {
      next.push_back(crypto::poseidon_hash2(level[i], level[i + 1]));
    }
    level = next;
    levels.push_back(level);
  }
  const Fr root = level[0];
  const std::size_t leaf_idx = 5;
  std::vector<Fr> siblings;
  std::vector<bool> dirs;
  std::size_t idx = leaf_idx;
  for (std::size_t d = 0; d < 3; ++d) {
    siblings.push_back(levels[d][idx ^ 1]);
    dirs.push_back((idx & 1) != 0);  // 1 = current node is right child
    idx >>= 1;
  }
  CircuitBuilder bld;
  const Wire leaf = bld.add_witness(leaves[leaf_idx]);
  std::vector<Wire> sw, dw;
  for (std::size_t d = 0; d < 3; ++d) {
    sw.push_back(bld.add_witness(siblings[d]));
    dw.push_back(bld.add_witness(dirs[d] ? Fr::one() : Fr::zero()));
  }
  const Wire computed = merkle_root_gadget(bld, leaf, sw, dw);
  EXPECT_EQ(bld.value(computed), root);
  EXPECT_TRUE(bld.witness_consistent());
}

TEST(MerkleGadget, WrongSiblingChangesRoot) {
  crypto::Drbg rng(10);
  CircuitBuilder bld;
  const Wire leaf = bld.add_witness(rng.random_fr());
  const Wire sib = bld.add_witness(rng.random_fr());
  const Wire dir = bld.add_witness(Fr::zero());
  const Wire root1 = merkle_root_gadget(bld, leaf, {&sib, 1}, {&dir, 1});
  const Wire sib2 = bld.add_witness(bld.value(sib) + Fr::one());
  const Wire root2 = merkle_root_gadget(bld, leaf, {&sib2, 1}, {&dir, 1});
  EXPECT_NE(bld.value(root1), bld.value(root2));
}

}  // namespace
}  // namespace zkdet::gadgets
