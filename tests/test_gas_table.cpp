// Regression tests pinning the Table II gas reproduction: each metered
// operation must stay within a tolerance band of the paper's Rinkeby
// measurement (so accidental changes to the gas schedule or contract
// storage layout show up as test failures, not silent bench drift).
#include <gtest/gtest.h>

#include "chain/nft.hpp"
#include "chain/verifier_contract.hpp"
#include "core/circuits.hpp"
#include "plonk/plonk.hpp"

namespace zkdet::chain {
namespace {

using crypto::Drbg;
using crypto::KeyPair;
using ff::Fr;

void expect_within(std::uint64_t measured, std::uint64_t paper,
                   double tolerance) {
  const double ratio =
      static_cast<double>(measured) / static_cast<double>(paper);
  EXPECT_GE(ratio, 1.0 - tolerance) << measured << " vs " << paper;
  EXPECT_LE(ratio, 1.0 + tolerance) << measured << " vs " << paper;
}

struct GasTableFixture : ::testing::Test {
  Drbg rng{1};
  Chain chain;
  KeyPair alice = KeyPair::generate(rng);
  KeyPair bob = KeyPair::generate(rng);
  Address alice_addr = chain.create_account(alice, 1'000'000);
  Address bob_addr = chain.create_account(bob, 1'000'000);
  Receipt deploy_receipt;
  DataNft& nft = chain.deploy<DataNft>(alice, &deploy_receipt);

  std::uint64_t mint_as(const KeyPair& who, std::uint64_t tag,
                        Receipt* receipt = nullptr) {
    std::uint64_t id = 0;
    const Receipt r = chain.call(who, "mint", [&](CallContext& ctx) {
      id = nft.mint(ctx, Fr::from_u64(tag), Fr::from_u64(tag + 1),
                    Fr::from_u64(tag + 2));
    });
    if (receipt != nullptr) *receipt = r;
    return id;
  }

  void warm_up() {
    mint_as(alice, 1);
    mint_as(bob, 2);
  }
};

TEST_F(GasTableFixture, NftDeployment) {
  expect_within(deploy_receipt.gas_used, 1'020'954, 0.05);
}

TEST_F(GasTableFixture, VerifierDeployment) {
  const plonk::Srs srs = plonk::Srs::setup((1 << 12) + 16, rng);
  gadgets::CircuitBuilder kb =
      core::build_key_circuit(Fr::one(), Fr::from_u64(2), Fr::from_u64(3));
  const auto keys = plonk::preprocess(kb.cs(), srs);
  ASSERT_TRUE(keys);
  Receipt r;
  chain.deploy<PlonkVerifierContract>(alice, &r, keys->vk);
  expect_within(r.gas_used, 1'644'969, 0.05);
}

TEST_F(GasTableFixture, SteadyStateMint) {
  warm_up();
  Receipt r;
  mint_as(alice, 100, &r);
  expect_within(r.gas_used, 106'048, 0.15);
}

TEST_F(GasTableFixture, Transfer) {
  warm_up();
  const std::uint64_t id = mint_as(alice, 100);
  const Receipt r = chain.call(alice, "xfer", [&](CallContext& ctx) {
    nft.transfer_from(ctx, alice_addr, bob_addr, id);
  });
  expect_within(r.gas_used, 36'574, 0.15);
}

TEST_F(GasTableFixture, Burn) {
  warm_up();
  const std::uint64_t id = mint_as(alice, 100);
  const Receipt r = chain.call(alice, "burn", [&](CallContext& ctx) {
    nft.burn(ctx, id);
  });
  expect_within(r.gas_used, 50'084, 0.15);
}

TEST_F(GasTableFixture, TransformationRegistration) {
  warm_up();
  const std::uint64_t a = mint_as(alice, 100);
  const std::uint64_t b = mint_as(alice, 200);
  const std::uint64_t d1 = mint_as(alice, 300);
  const std::uint64_t d2 = mint_as(alice, 400);
  const std::uint64_t d3 = mint_as(alice, 500);

  const Receipt agg = chain.call(alice, "agg", [&](CallContext& ctx) {
    nft.record_transformation(ctx, d1, Formula::kAggregation, {a, b});
  });
  expect_within(agg.gas_used, 96'780, 0.15);

  const Receipt part = chain.call(alice, "part", [&](CallContext& ctx) {
    nft.record_transformation(ctx, d2, Formula::kPartition, {a});
  });
  expect_within(part.gas_used, 83'124, 0.15);

  const Receipt dup = chain.call(alice, "dup", [&](CallContext& ctx) {
    nft.record_transformation(ctx, d3, Formula::kDuplication, {a});
  });
  expect_within(dup.gas_used, 94'012, 0.15);
}

TEST_F(GasTableFixture, RecordTransformationGuards) {
  const std::uint64_t a = mint_as(alice, 100);
  const std::uint64_t d = mint_as(alice, 200);
  // only once
  Receipt r = chain.call(alice, "rec", [&](CallContext& ctx) {
    nft.record_transformation(ctx, d, Formula::kDuplication, {a});
  });
  EXPECT_TRUE(r.success) << r.error;
  r = chain.call(alice, "rec-again", [&](CallContext& ctx) {
    nft.record_transformation(ctx, d, Formula::kDuplication, {a});
  });
  EXPECT_FALSE(r.success);
  // only the owner
  const std::uint64_t d2 = mint_as(alice, 300);
  r = chain.call(bob, "rec-foreign", [&](CallContext& ctx) {
    nft.record_transformation(ctx, d2, Formula::kDuplication, {a});
  });
  EXPECT_FALSE(r.success);
  // no self-parenting
  r = chain.call(alice, "rec-self", [&](CallContext& ctx) {
    nft.record_transformation(ctx, d2, Formula::kDuplication, {d2});
  });
  EXPECT_FALSE(r.success);
  // no empty parents
  r = chain.call(alice, "rec-empty", [&](CallContext& ctx) {
    nft.record_transformation(ctx, d2, Formula::kDuplication, {});
  });
  EXPECT_FALSE(r.success);
}

}  // namespace
}  // namespace zkdet::chain
