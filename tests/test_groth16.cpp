#include <gtest/gtest.h>

#include "gadgets/builder.hpp"
#include "gadgets/hash_gadgets.hpp"
#include "plonk/groth16.hpp"
#include "plonk/plonk.hpp"

namespace zkdet::plonk::groth16 {
namespace {

using crypto::Drbg;
using ff::Fr;

// x = w^3 + w + 5 (same circuit family as the Plonk tests).
struct CubicCircuit {
  ConstraintSystem cs;
  std::vector<Fr> witness;

  explicit CubicCircuit(std::uint64_t w_val) {
    const Var w = cs.add_variable();
    const Var w2 = cs.add_variable();
    const Var w3 = cs.add_variable();
    const Var x = cs.add_variable();
    cs.set_public(x);
    cs.add_gate({Fr::one(), Fr::zero(), Fr::zero(), -Fr::one(), Fr::zero(), w,
                 w, w2});
    cs.add_gate({Fr::one(), Fr::zero(), Fr::zero(), -Fr::one(), Fr::zero(), w2,
                 w, w3});
    cs.add_gate({Fr::zero(), Fr::one(), Fr::one(), -Fr::one(), Fr::from_u64(5),
                 w3, w, x});
    const Fr wf = Fr::from_u64(w_val);
    witness = {Fr::zero(), wf, wf * wf, wf * wf * wf,
               wf * wf * wf + wf + Fr::from_u64(5)};
  }
};

TEST(Groth16, RoundtripCubic) {
  Drbg rng(1);
  CubicCircuit c(3);
  auto keys = setup(c.cs, rng);
  ASSERT_TRUE(keys);
  auto proof = prove(keys->pk, c.cs, c.witness, rng);
  ASSERT_TRUE(proof);
  EXPECT_TRUE(verify(keys->vk, {c.witness[4]}, *proof));
}

TEST(Groth16, WrongPublicInputRejected) {
  Drbg rng(2);
  CubicCircuit c(3);
  auto keys = setup(c.cs, rng);
  auto proof = prove(keys->pk, c.cs, c.witness, rng);
  ASSERT_TRUE(proof);
  EXPECT_FALSE(verify(keys->vk, {c.witness[4] + Fr::one()}, *proof));
  EXPECT_FALSE(verify(keys->vk, {}, *proof));
  EXPECT_FALSE(verify(keys->vk, {c.witness[4], Fr::one()}, *proof));
}

TEST(Groth16, TamperedProofRejected) {
  Drbg rng(3);
  CubicCircuit c(3);
  auto keys = setup(c.cs, rng);
  auto proof = prove(keys->pk, c.cs, c.witness, rng);
  ASSERT_TRUE(proof);
  const std::vector<Fr> pub{c.witness[4]};
  Proof bad = *proof;
  bad.a = bad.a + ec::G1::generator();
  EXPECT_FALSE(verify(keys->vk, pub, bad));
  bad = *proof;
  bad.b = bad.b + ec::G2::generator();
  EXPECT_FALSE(verify(keys->vk, pub, bad));
  bad = *proof;
  bad.c = bad.c + ec::G1::generator();
  EXPECT_FALSE(verify(keys->vk, pub, bad));
}

TEST(Groth16, UnsatisfiedWitnessRejectedByProver) {
  Drbg rng(4);
  CubicCircuit c(3);
  auto keys = setup(c.cs, rng);
  c.witness[4] += Fr::one();
  EXPECT_FALSE(prove(keys->pk, c.cs, c.witness, rng).has_value());
}

TEST(Groth16, ProofsAreRandomized) {
  Drbg rng(5);
  CubicCircuit c(3);
  auto keys = setup(c.cs, rng);
  auto p1 = prove(keys->pk, c.cs, c.witness, rng);
  auto p2 = prove(keys->pk, c.cs, c.witness, rng);
  ASSERT_TRUE(p1 && p2);
  EXPECT_NE(p1->a, p2->a);  // fresh (r, s) each time
  EXPECT_TRUE(verify(keys->vk, {c.witness[4]}, *p1));
  EXPECT_TRUE(verify(keys->vk, {c.witness[4]}, *p2));
}

TEST(Groth16, ProofSizeSmallerThanPlonk) {
  EXPECT_EQ(Proof::size_bytes(), 256u);
  EXPECT_LT(Proof::size_bytes(), plonk::Proof::size_bytes());
}

TEST(Groth16, GadgetCircuitRoundtrip) {
  // Same builder front end as the Plonk stack: Poseidon preimage.
  Drbg rng(6);
  gadgets::CircuitBuilder bld;
  const gadgets::Wire pre = bld.add_witness(Fr::from_u64(1234));
  const gadgets::Wire h = gadgets::poseidon_hash2_gadget(bld, pre, pre);
  const gadgets::Wire pub = bld.add_public_input(bld.value(h));
  bld.assert_equal(h, pub);
  auto keys = setup(bld.cs(), rng);
  ASSERT_TRUE(keys);
  auto proof = prove(keys->pk, bld.cs(), bld.witness(), rng);
  ASSERT_TRUE(proof);
  const auto pubs = bld.cs().extract_public_inputs(bld.witness());
  EXPECT_TRUE(verify(keys->vk, pubs, *proof));
  EXPECT_FALSE(verify(keys->vk, {pubs[0] + Fr::one()}, *proof));
}

TEST(Groth16, CrossSystemSameCircuit) {
  // The same constraint system proves under both Plonk and Groth16.
  Drbg rng(7);
  CubicCircuit c(6);
  const Srs srs = Srs::setup(64, rng);
  auto pkeys = plonk::preprocess(c.cs, srs);
  auto gkeys = setup(c.cs, rng);
  ASSERT_TRUE(pkeys && gkeys);
  auto pproof = plonk::prove(pkeys->pk, c.cs, srs, c.witness, rng);
  auto gproof = prove(gkeys->pk, c.cs, c.witness, rng);
  ASSERT_TRUE(pproof && gproof);
  EXPECT_TRUE(plonk::verify(pkeys->vk, {c.witness[4]}, *pproof));
  EXPECT_TRUE(verify(gkeys->vk, {c.witness[4]}, *gproof));
}

TEST(Groth16, KeysFromOtherCircuitRejectProof) {
  // Per-circuit setup: keys for a different circuit shape must not
  // verify (the trusted-setup limitation Plonk's universal SRS avoids).
  Drbg rng(8);
  CubicCircuit c(3);
  auto keys = setup(c.cs, rng);
  // different circuit: w^2 = x
  ConstraintSystem cs2;
  const Var w = cs2.add_variable();
  const Var x = cs2.add_variable();
  cs2.set_public(x);
  cs2.add_gate({Fr::one(), Fr::zero(), Fr::zero(), -Fr::one(), Fr::zero(), w,
                w, x});
  auto keys2 = setup(cs2, rng);
  auto proof2 = prove(keys2->pk, cs2,
                      {Fr::zero(), Fr::from_u64(4), Fr::from_u64(16)}, rng);
  ASSERT_TRUE(proof2);
  EXPECT_TRUE(verify(keys2->vk, {Fr::from_u64(16)}, *proof2));
  EXPECT_FALSE(verify(keys->vk, {Fr::from_u64(16)}, *proof2));
}

class Groth16Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Groth16Sweep, RandomCubicInstances) {
  Drbg rng(GetParam());
  CubicCircuit c(GetParam() * 31 + 7);
  auto keys = setup(c.cs, rng);
  ASSERT_TRUE(keys);
  auto proof = prove(keys->pk, c.cs, c.witness, rng);
  ASSERT_TRUE(proof);
  EXPECT_TRUE(verify(keys->vk, {c.witness[4]}, *proof));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Groth16Sweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace zkdet::plonk::groth16
