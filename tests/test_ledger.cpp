// Durable-ledger unit tests: CRC32C vectors, canonical-codec round
// trips (encode -> decode -> encode byte equality on random entities),
// WAL frame robustness, and open/replay/snapshot behaviour of the
// Ledger itself. The crash-recovery fault matrix lives in
// test_ledger_crash_matrix.cpp.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>

#include "chain/chain.hpp"
#include "crypto/rng.hpp"
#include "crypto/schnorr.hpp"
#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/codec.hpp"
#include "ledger/crc32c.hpp"
#include "ledger/ledger.hpp"
#include "ledger/wal.hpp"

namespace zkdet::ledger {
namespace {

using chain::Block;
using chain::Event;
using chain::StateDelta;
using chain::TxRecord;
using crypto::Drbg;
using ff::Fr;

// --- crc32c ---

TEST(Crc32c, KnownVectors) {
  const std::string check = "123456789";
  const auto bytes = std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(check.data()), check.size());
  // The canonical CRC32C check value (RFC 3720 / iSCSI).
  EXPECT_EQ(crc32c(bytes), 0xE3069283u);
  EXPECT_EQ(crc32c(std::span<const std::uint8_t>{}), 0u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  Drbg rng("crc-test", 1);
  std::vector<std::uint8_t> data(301);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  const std::uint32_t whole = crc32c(data);
  for (const std::size_t split : {std::size_t{0}, std::size_t{1},
                                  std::size_t{150}, data.size()}) {
    const auto head = std::span(data).first(split);
    const auto tail = std::span(data).subspan(split);
    EXPECT_EQ(crc32c(tail, crc32c(head)), whole);
  }
}

// --- random entity generators ---

std::string random_string(Drbg& rng, std::size_t max_len) {
  std::string s;
  const std::size_t len = rng() % (max_len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng() % 256));  // full byte range
  }
  return s;
}

Event random_event(Drbg& rng) {
  Event e;
  e.name = random_string(rng, 12);
  const std::size_t n = rng() % 4;
  for (std::size_t i = 0; i < n; ++i) {
    e.fields.emplace_back(random_string(rng, 8), random_string(rng, 20));
  }
  return e;
}

TxRecord random_tx(Drbg& rng) {
  TxRecord tx;
  tx.block = rng();
  tx.sender = random_string(rng, 16);
  tx.description = random_string(rng, 40);
  tx.gas_used = rng();
  tx.success = rng() % 2 == 0;
  const std::size_t n = rng() % 3;
  for (std::size_t i = 0; i < n; ++i) tx.events.push_back(random_event(rng));
  tx.has_sig = rng() % 2 == 0;
  if (tx.has_sig) {
    tx.sig.r = crypto::KeyPair::generate(rng).pk;
    tx.sig.s = ff::random_field<Fr>(rng);
  }
  return tx;
}

Block random_block(Drbg& rng) {
  Block b;
  b.height = rng();
  b.timestamp = rng();
  for (auto& x : b.prev_hash) x = static_cast<std::uint8_t>(rng());
  for (auto& x : b.hash) x = static_cast<std::uint8_t>(rng());
  const std::size_t n = rng() % 3;
  for (std::size_t i = 0; i < n; ++i) b.txs.push_back(random_tx(rng));
  return b;
}

StateDelta random_delta(Drbg& rng) {
  StateDelta d;
  for (std::size_t i = rng() % 3; i > 0; --i) {
    d.balance_sets.emplace_back(random_string(rng, 12), rng());
  }
  for (std::size_t i = rng() % 2; i > 0; --i) {
    d.contracts_created.push_back(
        {random_string(rng, 12), random_string(rng, 8), rng()});
  }
  for (std::size_t i = rng() % 3; i > 0; --i) {
    d.slot_sets.emplace_back(random_string(rng, 12), random_string(rng, 16),
                             ff::random_field<Fr>(rng));
  }
  for (std::size_t i = rng() % 2; i > 0; --i) {
    d.slot_erases.emplace_back(random_string(rng, 12), random_string(rng, 16));
  }
  return d;
}

bool tx_equal(const TxRecord& a, const TxRecord& b) {
  return encode_tx_record(a) == encode_tx_record(b);
}

// --- codec round trips ---

TEST(Codec, TxRecordRoundTripsExactly) {
  Drbg rng("codec-tx", 2);
  for (int i = 0; i < 50; ++i) {
    const TxRecord tx = random_tx(rng);
    const auto bytes = encode_tx_record(tx);
    const TxRecord back = decode_tx_record(bytes);
    EXPECT_EQ(encode_tx_record(back), bytes) << "iteration " << i;
    EXPECT_TRUE(tx_equal(tx, back));
  }
}

TEST(Codec, BlockRoundTripsExactly) {
  Drbg rng("codec-block", 3);
  for (int i = 0; i < 25; ++i) {
    const Block b = random_block(rng);
    const auto bytes = encode_block(b);
    const Block back = decode_block(bytes);
    EXPECT_EQ(encode_block(back), bytes) << "iteration " << i;
    EXPECT_EQ(back.height, b.height);
    EXPECT_EQ(back.timestamp, b.timestamp);
    EXPECT_EQ(back.prev_hash, b.prev_hash);
    EXPECT_EQ(back.hash, b.hash);
    ASSERT_EQ(back.txs.size(), b.txs.size());
    for (std::size_t t = 0; t < b.txs.size(); ++t) {
      EXPECT_TRUE(tx_equal(back.txs[t], b.txs[t]));
    }
  }
}

TEST(Codec, EventAndDeltaRoundTripExactly) {
  Drbg rng("codec-ev", 4);
  for (int i = 0; i < 50; ++i) {
    const Event e = random_event(rng);
    EXPECT_EQ(encode_event(decode_event(encode_event(e))), encode_event(e));
    const StateDelta d = random_delta(rng);
    EXPECT_EQ(encode_delta(decode_delta(encode_delta(d))), encode_delta(d));
  }
}

TEST(Codec, SnapshotRoundTripsExactly) {
  Drbg rng("codec-snap", 5);
  ChainSnapshot s;
  s.wal_seq = 42;
  for (int i = 0; i < 4; ++i) s.blocks.push_back(random_block(rng));
  for (int i = 0; i < 3; ++i) {
    const auto addr = "acct" + std::to_string(i);
    s.balances[addr] = rng();
    s.account_keys[addr] = crypto::KeyPair::generate(rng).pk;
  }
  chain::RestoredContract rc;
  rc.name = "Probe";
  rc.code_size = 99;
  rc.slots["a"] = ff::random_field<Fr>(rng);
  rc.slots["b"] = ff::random_field<Fr>(rng);
  s.contracts["ct:Probe#1"] = rc;

  const auto bytes = encode_snapshot(s);
  const ChainSnapshot back = decode_snapshot(bytes);
  EXPECT_EQ(encode_snapshot(back), bytes);
  EXPECT_EQ(back.wal_seq, 42u);
  EXPECT_EQ(back.contracts.at("ct:Probe#1").slots.size(), 2u);
}

TEST(Codec, EveryStrictPrefixIsRejected) {
  Drbg rng("codec-prefix", 6);
  const auto bytes = encode_block(random_block(rng));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(decode_block(std::span(bytes).first(cut)), CodecError);
  }
  // ...and trailing garbage is rejected too.
  auto extended = bytes;
  extended.push_back(0);
  EXPECT_THROW(decode_block(extended), CodecError);
}

TEST(Codec, NonCanonicalFieldElementRejected) {
  // A delta with one slot write whose Fr bytes we bump above the modulus.
  StateDelta d;
  d.slot_sets.emplace_back("c", "k", Fr::from_u64(1));
  auto bytes = encode_delta(d);
  // The Fr is the last 32 bytes; overwrite with 0xFF... (> r).
  for (std::size_t i = bytes.size() - 32; i < bytes.size(); ++i) {
    bytes[i] = 0xFF;
  }
  EXPECT_THROW(decode_delta(bytes), CodecError);
}

TEST(Codec, UnknownVersionRejected) {
  const auto bytes = encode_event(Event{"E", {}});
  auto bumped = bytes;
  bumped[0] = 0xFE;  // version low byte
  EXPECT_THROW(decode_event(bumped), CodecError);
}

// --- WAL framing ---

TEST(Wal, FrameParsesBack) {
  Drbg rng("wal-frame", 7);
  std::vector<std::uint8_t> payload(129);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
  const auto frame = frame_record(payload);
  ASSERT_EQ(frame.size(), payload.size() + kFrameHeaderSize);
  const auto rec = parse_record(frame, 0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         rec->payload.begin(), rec->payload.end()));
  EXPECT_EQ(rec->next_offset, frame.size());
}

TEST(Wal, EverySingleByteFlipInvalidatesTheFrame) {
  std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7};
  const auto frame = frame_record(payload);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    for (int bit = 0; bit < 8; bit += 3) {
      auto mutated = frame;
      mutated[i] ^= static_cast<std::uint8_t>(1u << bit);
      const auto rec = parse_record(mutated, 0);
      // A flip in the length field may still "frame" correctly only if
      // the CRC of the re-sliced payload matches — which CRC32C makes
      // effectively impossible for these sizes; require rejection.
      EXPECT_FALSE(rec.has_value()) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(Wal, ScanStopsAtTornTail) {
  std::vector<std::uint8_t> file;
  const auto append = [&](std::initializer_list<std::uint8_t> payload) {
    const auto f = frame_record(std::vector<std::uint8_t>(payload));
    file.insert(file.end(), f.begin(), f.end());
  };
  append({10, 11});
  append({20, 21, 22});
  const std::size_t intact = file.size();
  const auto torn = frame_record(std::vector<std::uint8_t>{30, 31});
  file.insert(file.end(), torn.begin(), torn.end() - 3);  // partial write

  const auto scan = scan_wal(file);
  ASSERT_EQ(scan.payloads.size(), 2u);
  EXPECT_EQ(scan.payloads[1], (std::vector<std::uint8_t>{20, 21, 22}));
  EXPECT_EQ(scan.valid_bytes, intact);
  EXPECT_TRUE(scan.has_torn_tail);
}

TEST(Wal, ParseNeverOverreadsArbitraryBytes) {
  Drbg rng("wal-fuzzish", 8);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> junk(rng() % 64);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    const auto scan = scan_wal(junk);  // must not crash or throw
    EXPECT_LE(scan.valid_bytes, junk.size());
  }
}

// --- Ledger open/replay/snapshot ---

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("zkdet-ledger-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1)));
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

// Minimal contract whose storage and mirror we can drive from tests.
class ProbeContract : public chain::Contract {
 public:
  ProbeContract() : Contract("Probe", 64) {}

  void set(chain::CallContext& ctx, const std::string& key, std::uint64_t v) {
    store().set_u64(ctx, key, v);
  }
  void erase(chain::CallContext& ctx, const std::string& key) {
    store().erase(ctx, key);
  }
};

struct LedgerWorld {
  chain::Chain chain;
  Drbg rng{"ledger-world", 11};
  crypto::KeyPair alice = crypto::KeyPair::generate(rng);
  crypto::KeyPair bob = crypto::KeyPair::generate(rng);
};

TEST(Ledger, FreshDirThenReopenRebuildsByteIdenticalChain) {
  TempDir dir;
  std::array<std::uint8_t, 32> tip{};
  std::map<chain::Address, std::uint64_t> balances;
  {
    LedgerWorld w;
    Ledger ledger(w.chain, dir.str());
    const auto a = w.chain.create_account(w.alice, 1000);
    const auto b = w.chain.create_account(w.bob, 500);
    auto& probe = w.chain.deploy<ProbeContract>(w.alice, nullptr);
    w.chain.call(w.alice, "pay", [](chain::CallContext&) {}, 100, b);
    w.chain.call(w.alice, "slots", [&](chain::CallContext& ctx) {
      probe.set(ctx, "x", 7);
      probe.set(ctx, "y", 8);
      probe.erase(ctx, "y");
      ctx.emit(Event{"Probe", {{"x", "7"}}});
    });
    w.chain.advance_blocks(2);
    ASSERT_TRUE(w.chain.validate_chain());
    tip = w.chain.blocks().back().hash;
    balances = w.chain.balances_map();
    (void)a;
  }
  {
    LedgerWorld w;
    Ledger ledger(w.chain, dir.str());
    EXPECT_TRUE(w.chain.validate_chain());
    EXPECT_EQ(w.chain.blocks().back().hash, tip);
    EXPECT_EQ(w.chain.balances_map(), balances);
    EXPECT_GT(ledger.stats().replayed_blocks, 0u);
    // The probe contract's persisted state awaits adoption...
    ASSERT_EQ(w.chain.pending_adoptions().size(), 1u);
    // ...and re-deploying in the original order re-binds it.
    auto& probe = w.chain.deploy<ProbeContract>(w.alice, nullptr);
    EXPECT_TRUE(w.chain.pending_adoptions().empty());
    const auto x = probe.audit_store().peek("x");
    ASSERT_TRUE(x.has_value());
    EXPECT_EQ(x->to_canonical().limb[0], 7u);
    EXPECT_FALSE(probe.audit_store().peek("y").has_value());
    // Adoption must not have sealed a duplicate deploy block.
    EXPECT_EQ(w.chain.blocks().back().hash, tip);
  }
}

TEST(Ledger, IdempotentAccountReplayDoesNotDoubleCredit) {
  TempDir dir;
  LedgerWorld w0;
  {
    Ledger ledger(w0.chain, dir.str());
    w0.chain.create_account(w0.alice, 1000);
  }
  LedgerWorld w1;
  Ledger ledger(w1.chain, dir.str());
  // Same app startup ritual against restored state: a no-op.
  const auto addr = w1.chain.create_account(w1.alice, 1000);
  EXPECT_EQ(w1.chain.balance(addr), 1000u);
}

TEST(Ledger, SnapshotShortensReplayAndDropsOldSegments) {
  TempDir dir;
  Options opts;
  opts.snapshot_interval = 4;
  std::array<std::uint8_t, 32> tip{};
  {
    LedgerWorld w;
    Ledger ledger(w.chain, dir.str(), opts);
    w.chain.create_account(w.alice, 1000);
    for (int i = 0; i < 11; ++i) {
      w.chain.call(w.alice, "tick " + std::to_string(i),
                   [](chain::CallContext&) {});
    }
    EXPECT_GE(ledger.stats().snapshots_written, 2u);
    tip = w.chain.blocks().back().hash;
  }
  LedgerWorld w;
  Ledger ledger(w.chain, dir.str(), opts);
  EXPECT_TRUE(ledger.stats().opened_from_snapshot);
  // Only the WAL suffix after the last snapshot is replayed.
  EXPECT_LT(ledger.stats().replayed_blocks, 4u);
  EXPECT_EQ(w.chain.blocks().back().hash, tip);
  EXPECT_TRUE(w.chain.validate_chain());
  // Rotation deleted segments covered by the snapshot.
  std::size_t wal_files = 0;
  for (const auto& ent : std::filesystem::directory_iterator(dir.path)) {
    wal_files += ent.path().filename().string().rfind("wal-", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(wal_files, 1u);
}

TEST(Ledger, TornAppendTruncatedOnReopen) {
  TempDir dir;
  std::array<std::uint8_t, 32> tip_before_crash{};
  {
    LedgerWorld w;
    Ledger ledger(w.chain, dir.str());
    w.chain.create_account(w.alice, 1000);
    w.chain.call(w.alice, "good", [](chain::CallContext&) {});
    tip_before_crash = w.chain.blocks().back().hash;

    fault::inject(fault::points::kLedgerWalAppendTorn,
                  fault::Schedule::always());
    EXPECT_THROW(
        w.chain.call(w.alice, "doomed", [](chain::CallContext&) {}),
        CrashInjected);
    fault::clear_all();
    // Fail-stop: the ledger refuses to continue past an unknown tail.
    EXPECT_TRUE(ledger.poisoned());
    EXPECT_THROW(w.chain.call(w.alice, "after", [](chain::CallContext&) {}),
                 IoError);
  }
  LedgerWorld w;
  Ledger ledger(w.chain, dir.str());
  EXPECT_TRUE(ledger.stats().torn_tail_truncated);
  EXPECT_TRUE(w.chain.validate_chain());
  // The doomed tx's record was torn: the chain reopens at the last
  // durable block.
  EXPECT_EQ(w.chain.blocks().back().hash, tip_before_crash);
}

TEST(Ledger, TamperedWalRecordFailsReplayValidation) {
  TempDir dir;
  {
    LedgerWorld w;
    Ledger ledger(w.chain, dir.str());
    w.chain.create_account(w.alice, 1000);
    w.chain.call(w.alice, "target of tampering", [](chain::CallContext&) {});
  }
  // Forge the last record: flip a payload byte and fix up the CRC so
  // framing still accepts it — replay must still catch the forgery via
  // the block hash link.
  std::string wal_path;
  for (const auto& ent : std::filesystem::directory_iterator(dir.path)) {
    if (ent.path().filename().string().rfind("wal-", 0) == 0) {
      wal_path = ent.path().string();
    }
  }
  ASSERT_FALSE(wal_path.empty());
  auto bytes = File::open_read(wal_path)->read_all();
  const auto scan = scan_wal(bytes);
  ASSERT_FALSE(scan.payloads.empty());
  auto forged = scan.payloads.back();
  // Flip one byte near the middle (inside the tx description).
  forged[forged.size() / 2] ^= 0x01;
  std::vector<std::uint8_t> rebuilt(
      bytes.begin(),
      bytes.begin() + static_cast<std::ptrdiff_t>(scan.valid_bytes));
  // Drop the last intact frame, append the forged one.
  rebuilt.resize(rebuilt.size() -
                 (kFrameHeaderSize + scan.payloads.back().size()));
  const auto frame = frame_record(forged);
  rebuilt.insert(rebuilt.end(), frame.begin(), frame.end());
  {
    File f = File::create_truncate(wal_path);
    f.write_all(rebuilt);
    f.sync();
  }
  LedgerWorld w;
  EXPECT_THROW(Ledger(w.chain, dir.str()), IoError);
}

TEST(Ledger, FsyncFailurePoisonsLedger) {
  TempDir dir;
  LedgerWorld w;
  Ledger ledger(w.chain, dir.str());
  w.chain.create_account(w.alice, 1000);
  fault::inject(fault::points::kLedgerFsync, fault::Schedule::once());
  EXPECT_THROW(w.chain.call(w.alice, "eio", [](chain::CallContext&) {}),
               IoError);
  fault::clear_all();
  EXPECT_TRUE(ledger.poisoned());
}

}  // namespace
}  // namespace zkdet::ledger
