// Crash-recovery matrix (ISSUE 5 acceptance property): for EVERY ledger
// fail-point and every hit position, killing the process mid-write and
// reopening the data directory must yield a chain that (a) passes
// validate_chain() and (b) reaches the exact same tip hash, balances
// and contract state as an uninterrupted run once the interrupted
// workload is resumed.
//
// The workload is a fixed script of ops where each op seals exactly one
// block, so the recovered chain height tells the resume loop precisely
// which ops are already durable — the same discipline a real client
// uses ("did my tx land?" == "is it in a block?"). All schedules are
// deterministic (fault::Schedule::once at each hit index), so this
// matrix needs no sanitizer luck to reproduce a failure: the failing
// (point, hit) pair is printed by gtest.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <optional>

#include "chain/chain.hpp"
#include "crypto/rng.hpp"
#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/ledger.hpp"

namespace zkdet::ledger {
namespace {

using chain::CallContext;
using crypto::Drbg;
using crypto::KeyPair;

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("zkdet-crash-matrix-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1)));
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

class ProbeContract : public chain::Contract {
 public:
  ProbeContract() : Contract("Probe", 64) {}
  void set(CallContext& ctx, const std::string& key, std::uint64_t v) {
    store().set_u64(ctx, key, v);
  }
  void erase(CallContext& ctx, const std::string& key) {
    store().erase(ctx, key);
  }
};

constexpr std::size_t kOps = 10;
// Startup seals one block (the Probe deploy) on top of genesis, so op i
// runs when the chain is at height kStartupHeight + i.
constexpr std::uint64_t kStartupHeight = 2;

// One "process": a chain with a ledger attached, the startup ritual
// already executed (accounts registered, Probe deployed-or-adopted).
struct World {
  chain::Chain chain;
  std::optional<Ledger> ledger;  // declared after chain: detaches first
  KeyPair alice, bob;
  chain::Address a, b;
  ProbeContract* probe = nullptr;

  World(const std::string& dir, const Options& opts) {
    Drbg rng("crash-matrix", 17);
    alice = KeyPair::generate(rng);
    bob = KeyPair::generate(rng);
    ledger.emplace(chain, dir, opts);
    // Idempotent against restored state: a known key is a no-op credit,
    // and the deploy adopts its persisted contract instead of re-minting.
    a = chain.create_account(alice, 100'000);
    b = chain.create_account(bob, 50'000);
    probe = &chain.deploy<ProbeContract>(alice, nullptr);
  }

  void run_op(std::size_t i) {
    const std::string tag = " op " + std::to_string(i);
    switch (i % 5) {
      case 0:
        chain.call(
            alice, "transfer" + tag, [](CallContext&) {}, 10 + i, b);
        break;
      case 1:
        chain.call(alice, "slots" + tag, [&](CallContext& ctx) {
          probe->set(ctx, "k" + std::to_string(i), i * 7);
          probe->set(ctx, "shared", i);
        });
        break;
      case 2:
        chain.call(bob, "events" + tag, [&](CallContext& ctx) {
          ctx.emit(chain::Event{"Tick", {{"op", std::to_string(i)}}});
          ctx.emit(chain::Event{"Tock", {{"sq", std::to_string(i * i)}}});
        });
        break;
      case 3:
        chain.call(alice, "churn" + tag, [&](CallContext& ctx) {
          probe->set(ctx, "tmp", i);
          probe->erase(ctx, "tmp");
        });
        break;
      default:
        chain.advance_blocks(1);
        break;
    }
  }

  // Resumes the script from whatever the recovered height says is done.
  void run_remaining() {
    ASSERT_GE(chain.height(), kStartupHeight);
    for (std::size_t i = chain.height() - kStartupHeight; i < kOps; ++i) {
      run_op(i);
    }
  }
};

struct FinalState {
  std::array<std::uint8_t, 32> tip{};
  std::uint64_t height = 0;
  std::map<chain::Address, std::uint64_t> balances;
  std::map<std::string, ff::Fr> probe_slots;
};

FinalState capture(World& w) {
  FinalState s;
  s.tip = w.chain.blocks().back().hash;
  s.height = w.chain.height();
  s.balances = w.chain.balances_map();
  s.probe_slots = w.probe->audit_store().peek_all();
  return s;
}

void expect_equal(const FinalState& got, const FinalState& want,
                  const std::string& what) {
  EXPECT_EQ(got.height, want.height) << what;
  EXPECT_EQ(got.tip, want.tip) << what << ": tip hash diverged";
  EXPECT_EQ(got.balances, want.balances) << what;
  EXPECT_EQ(got.probe_slots, want.probe_slots) << what;
}

Options matrix_options() {
  Options opts;
  opts.snapshot_interval = 4;  // several snapshots inside the script
  opts.verify_signatures = true;
  opts.fsync_each_append = true;
  return opts;
}

// The uninterrupted run every (point, hit) cell must converge to.
FinalState control_state() {
  TempDir dir;
  World w(dir.str(), matrix_options());
  w.run_remaining();
  EXPECT_TRUE(w.chain.validate_chain());
  return capture(w);
}

struct MatrixCase {
  const char* point;
  std::uint64_t hit;
};

class CrashMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(CrashMatrix, KillReopenReplayConverges) {
  const auto& [point, hit] = GetParam();
  static const FinalState control = control_state();

  TempDir dir;
  fault::inject(point, fault::Schedule::once(hit));
  bool crashed = false;
  {
    std::optional<World> w;
    try {
      w.emplace(dir.str(), matrix_options());
      w->run_remaining();
    } catch (const CrashInjected&) {
      crashed = true;
    } catch (const IoError&) {
      crashed = true;  // injected EIO: fail-stop, treated as a kill
    }
    if (!crashed) {
      // The schedule's hit index exceeds how often this point is even
      // consulted in a clean run: the run completed uninterrupted.
      EXPECT_EQ(fault::failures(point), 0u)
          << point << " fired but nothing crashed";
      EXPECT_TRUE(w->chain.validate_chain());
      expect_equal(capture(*w), control, "uninterrupted cell");
      fault::clear_all();
      return;
    }
    // "Process death": drop every in-memory structure, faults off.
  }
  fault::clear_all();

  // Reopen as a fresh process and let the client resume its script.
  World w(dir.str(), matrix_options());
  EXPECT_TRUE(w.chain.validate_chain())
      << point << "@" << hit << ": recovered chain fails validation";
  w.run_remaining();
  EXPECT_TRUE(w.chain.validate_chain());
  expect_equal(capture(w), control,
               std::string(point) + "@" + std::to_string(hit));
}

std::vector<MatrixCase> all_cases() {
  std::vector<MatrixCase> cases;
  // A clean run appends 2 account records + 11 block records = 13 WAL
  // writes and performs 2 snapshots; hits beyond a point's actual count
  // degenerate to uninterrupted runs (verified as such by the test).
  for (const char* point : fault::points::kLedgerAll) {
    for (std::uint64_t hit = 1; hit <= 14; ++hit) {
      cases.push_back({point, hit});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllLedgerFailPoints, CrashMatrix, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      std::string name = info.param.point;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name + "_hit" + std::to_string(info.param.hit);
    });

}  // namespace
}  // namespace zkdet::ledger
