// Lock-discipline layer (src/check/mutex.hpp) tests.
//
// Two build modes exercise two different contracts:
//
//   -DZKDET_CHECKED=ON   lockdep is armed: correct-order nesting
//                        passes; a seeded order inversion, reentrant
//                        acquisition, same-level nesting, and unlock of
//                        an unheld mutex are all caught as
//                        deterministic CheckFailure exceptions via the
//                        pluggable ZKDET_CHECK handler — no deadly
//                        interleaving required.
//
//   release (default)    the zero-cost fast path: zkdet::Mutex is
//                        layout-compatible with std::mutex and the
//                        lockdep bookkeeping compiles out, so the same
//                        seeded inversion runs without complaint (the
//                        default failure handler would abort the
//                        process if any check fired).
//
// Both modes run the CondVar handshake and the thread-locality test;
// tier-1 covers release, scripts/ci.sh's `checked` stage covers armed.
#include <gtest/gtest.h>

#include <mutex>
#include <thread>

#include "check/check.hpp"
#include "check/lock_order.hpp"
#include "check/mutex.hpp"

namespace zkdet {
namespace {

using check::CheckFailure;
using check::LockLevel;
using check::ScopedThrowHandler;

TEST(Lockdep, CorrectOrderNestingPasses) {
  Mutex outer(LockLevel::kTxPool, "t.outer");
  Mutex mid(LockLevel::kChain, "t.mid");
  Mutex inner(LockLevel::kFault, "t.inner");
  ScopedThrowHandler guard;
  const MutexLock a(outer);
  const MutexLock b(mid);
  const MutexLock c(inner);  // strictly increasing levels: fine
}

TEST(Lockdep, OutOfOrderReleaseIsLegal) {
  // Only acquisition order can deadlock; releases may interleave.
  Mutex lo(LockLevel::kLedger, "t.lo");
  Mutex hi(LockLevel::kStorage, "t.hi");
  ScopedThrowHandler guard;
  lo.lock();
  hi.lock();
  lo.unlock();  // released before the inner lock
  hi.unlock();
}

TEST(Lockdep, ReacquireAfterReleaseAtSameLevel) {
  // Sequential (non-nested) same-level acquisitions are fine.
  Mutex a(LockLevel::kPoolQueue, "t.q0");
  Mutex b(LockLevel::kPoolQueue, "t.q1");
  ScopedThrowHandler guard;
  { const MutexLock lk(a); }
  { const MutexLock lk(b); }
}

TEST(Lockdep, HeldStackIsThreadLocal) {
  // A lock held on one thread does not constrain another thread's
  // acquisitions (each thread has its own held-lock stack).
  Mutex hi(LockLevel::kFault, "t.hi");
  Mutex lo(LockLevel::kTxPool, "t.lo");
  ScopedThrowHandler guard;
  const MutexLock main_holds(hi);
  std::thread other([&] {
    // Fresh stack: locking the LOWER level here is not an inversion.
    const MutexLock lk(lo);
  });
  other.join();
}

TEST(Lockdep, CondVarHandshake) {
  // Manual wait loop (no predicate overload on purpose: the guarded
  // reads must sit syntactically inside the locked scope for TSA).
  Mutex mu(LockLevel::kPoolSleep, "t.cv");
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    const MutexLock lk(mu);
    ready = true;
    cv.notify_one();
  });
  {
    UniqueLock lk(mu);
    while (!ready) cv.wait(lk);
  }
  producer.join();
  Mutex after(LockLevel::kFault, "t.after");
  const MutexLock lk(after);  // held-stack is clean after the wait
}

#ifdef ZKDET_CHECKED

TEST(Lockdep, SeededInversionIsDeterministicFailure) {
  // The deadlock recipe — take a high level, then a low one — is
  // flagged on the FIRST acquisition, not when a second thread happens
  // to take the locks the other way around.
  Mutex ledger(LockLevel::kLedger, "t.ledger");
  Mutex txpool(LockLevel::kTxPool, "t.txpool");
  ScopedThrowHandler guard;
  const MutexLock hold(ledger);
  try {
    txpool.lock();
    FAIL() << "lock-order inversion not detected";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("inversion"), std::string::npos) << what;
    EXPECT_NE(what.find("TxPool"), std::string::npos) << what;
    EXPECT_NE(what.find("Ledger"), std::string::npos) << what;
  }
  // Validation runs before the underlying mutex is touched, so the
  // rejected mutex is still unlocked and usable in a valid order.
  std::thread clean([&] {
    const MutexLock lk(txpool);
  });
  clean.join();
}

TEST(Lockdep, SameLevelNestingRejected) {
  // Two locks of one level have no defined mutual order; nesting them
  // is exactly the classic AB/BA recipe and is rejected outright.
  Mutex a(LockLevel::kPoolQueue, "t.qa");
  Mutex b(LockLevel::kPoolQueue, "t.qb");
  ScopedThrowHandler guard;
  const MutexLock lk(a);
  EXPECT_THROW(b.lock(), CheckFailure);
}

TEST(Lockdep, ReentrantAcquisitionRejected) {
  Mutex mu(LockLevel::kChain, "t.re");
  ScopedThrowHandler guard;
  const MutexLock lk(mu);
  EXPECT_THROW(mu.lock(), CheckFailure);
}

TEST(Lockdep, UnlockOfUnheldMutexRejected) {
  Mutex mu(LockLevel::kChain, "t.unheld");
  ScopedThrowHandler guard;
  EXPECT_THROW(mu.unlock(), CheckFailure);
}

#else  // !ZKDET_CHECKED

// Layout compatibility is asserted inside check/mutex.hpp as well; the
// duplicate here keeps the contract visible where it is tested.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "release zkdet::Mutex must add no state over std::mutex");

TEST(Lockdep, ReleaseBuildCompilesLockdepOut) {
  // The same seeded inversion as the checked-mode test. The default
  // failure handler aborts the process, so merely running to the end
  // proves no lockdep check fired in release mode.
  Mutex ledger(LockLevel::kLedger, "t.ledger");
  Mutex txpool(LockLevel::kTxPool, "t.txpool");
  ledger.lock();
  txpool.lock();  // inverted order: not examined, not reported
  txpool.unlock();
  ledger.unlock();
}

#endif  // ZKDET_CHECKED

}  // namespace
}  // namespace zkdet
