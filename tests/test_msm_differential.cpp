// Differential tests for the MSM overhaul: the signed-digit affine
// bucket path, the retained full-Jacobian baseline, and the naive
// double-and-add reference must agree bit-for-bit on every input class
// that has historically broken bucket MSMs (zero scalars, identity
// bases, duplicate bases, scalars at the group order boundary, sizes
// straddling the naive/parallel dispatch thresholds). Also covers
// batch normalization with identities, mixed (Jacobian + affine)
// addition, the constant-time ladder, and the bucket-memory window cap.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "ec/msm.hpp"

namespace zkdet::ec {
namespace {

using ff::Fr;
using ff::random_field;

// Scalar just below the group order: r - 1 == -1 mod r. Exercises the
// top signed-digit window and every carry in the decomposition.
Fr r_minus_one() { return Fr::zero() - Fr::one(); }

struct G1Api {
  using Jac = G1;
  using Aff = G1Affine;
  static G1 gen_mul(const Fr& k) { return g1_mul_generator(k); }
  static G1 run(std::span<const Fr> s, std::span<const G1> p) {
    return msm(s, p);
  }
  static G1 run_affine(std::span<const Fr> s, std::span<const G1Affine> p) {
    return msm(s, p);
  }
  static G1 run_jacobian(std::span<const Fr> s, std::span<const G1> p) {
    return msm_jacobian(s, p);
  }
  static G1 run_naive(std::span<const Fr> s, std::span<const G1> p) {
    return msm_naive(s, p);
  }
};

struct G2Api {
  using Jac = G2;
  using Aff = G2Affine;
  static G2 gen_mul(const Fr& k) { return g2_mul_generator(k); }
  static G2 run(std::span<const Fr> s, std::span<const G2> p) {
    return msm_g2(s, p);
  }
  static G2 run_affine(std::span<const Fr> s, std::span<const G2Affine> p) {
    return msm_g2(s, p);
  }
  static G2 run_jacobian(std::span<const Fr> s, std::span<const G2> p) {
    return msm_jacobian_g2(s, p);
  }
  static G2 run_naive(std::span<const Fr> s, std::span<const G2> p) {
    return msm_naive_g2(s, p);
  }
};

// All four implementations on the same input must agree.
template <typename Api>
void check_all_paths(const std::vector<Fr>& scalars,
                     const std::vector<typename Api::Jac>& points,
                     const char* what) {
  const auto expected = Api::run_naive(scalars, points);
  EXPECT_EQ(Api::run(scalars, points), expected) << what << " (msm)";
  EXPECT_EQ(Api::run_jacobian(scalars, points), expected)
      << what << " (jacobian baseline)";
  const auto affine = batch_normalize(
      std::span<const typename Api::Jac>(points));
  EXPECT_EQ(Api::run_affine(scalars, affine), expected)
      << what << " (affine bases)";
}

template <typename Api>
void run_edge_suite(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  // Sizes straddle both dispatch thresholds: n < 8 runs naive, n >= 256
  // distributes windows over the thread pool.
  for (const std::size_t n : {1u, 7u, 8u, 9u, 255u, 256u, 257u}) {
    std::vector<Fr> scalars(n);
    std::vector<typename Api::Jac> points(n);
    for (std::size_t i = 0; i < n; ++i) {
      scalars[i] = random_field<Fr>(rng);
      points[i] = Api::gen_mul(random_field<Fr>(rng));
    }
    // Seed the edge cases into the front of the vector.
    scalars[0] = Fr::zero();
    if (n >= 3) {
      scalars[1] = r_minus_one();
      scalars[2] = Fr::one();
      points[1] = Api::Jac::identity();     // identity base, max scalar
      points[2] = points[n - 1];            // duplicate base
    }
    check_all_paths<Api>(scalars, points,
                         ("n=" + std::to_string(n)).c_str());
  }
}

TEST(MsmDifferential, G1EdgeInputs) { run_edge_suite<G1Api>(101); }
TEST(MsmDifferential, G2EdgeInputs) { run_edge_suite<G2Api>(202); }

TEST(MsmDifferential, G1AllZeroScalars) {
  std::mt19937_64 rng(7);
  std::vector<Fr> scalars(64, Fr::zero());
  std::vector<G1> points(64);
  for (auto& p : points) p = g1_mul_generator(random_field<Fr>(rng));
  EXPECT_EQ(msm(scalars, points), G1::identity());
  EXPECT_EQ(msm_jacobian(scalars, points), G1::identity());
}

TEST(MsmDifferential, G1AllIdentityPoints) {
  std::mt19937_64 rng(8);
  std::vector<Fr> scalars(64);
  for (auto& s : scalars) s = random_field<Fr>(rng);
  std::vector<G1> points(64, G1::identity());
  EXPECT_EQ(msm(scalars, points), G1::identity());
}

TEST(MsmDifferential, G1AllMaxScalars) {
  // Every digit in the signed decomposition of r-1 carries; a bucket
  // sign error anywhere shows up here.
  std::mt19937_64 rng(9);
  std::vector<Fr> scalars(32, r_minus_one());
  std::vector<G1> points(32);
  for (auto& p : points) p = g1_mul_generator(random_field<Fr>(rng));
  check_all_paths<G1Api>(scalars, points, "all r-1 scalars");
}

TEST(MsmDifferential, EmptyInputIsIdentity) {
  EXPECT_EQ(msm(std::span<const Fr>{}, std::span<const G1>{}), G1::identity());
  EXPECT_EQ(msm_g2(std::span<const Fr>{}, std::span<const G2>{}),
            G2::identity());
}

// --- window sizing / bucket memory cap -------------------------------

TEST(MsmWindowCap, BucketMemoryBoundHolds) {
  // For any n, one window's bucket array must fit in kMsmMaxBucketBytes.
  for (const std::size_t n :
       {1u, 64u, 4096u, 1u << 16, 1u << 20, 1u << 24}) {
    for (const std::size_t bytes : {sizeof(G1), sizeof(G2)}) {
      const std::size_t c = msm_window_size(n, bytes);
      ASSERT_GE(c, std::size_t{1});
      EXPECT_LE((std::size_t{1} << (c - 1)) * bytes, kMsmMaxBucketBytes)
          << "n=" << n << " point_bytes=" << bytes << " c=" << c;
    }
  }
}

TEST(MsmWindowCap, LargeG2MsmStaysCorrectUnderCap) {
  // Large enough n that the uncapped heuristic would have picked a
  // wider window; the capped choice must still be correct.
  constexpr std::size_t n = 3000;
  std::mt19937_64 rng(33);
  std::vector<Fr> scalars(n);
  std::vector<G2> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    scalars[i] = random_field<Fr>(rng);
    points[i] = g2_mul_generator(random_field<Fr>(rng));
  }
  EXPECT_EQ(msm_g2(scalars, points), msm_jacobian_g2(scalars, points));
}

// --- batch normalization ---------------------------------------------

TEST(BatchNormalize, RoundTripsAndHandlesIdentity) {
  std::mt19937_64 rng(11);
  std::vector<G1> points;
  points.push_back(G1::identity());  // identity at the front
  for (int i = 0; i < 9; ++i) {
    points.push_back(g1_mul_generator(random_field<Fr>(rng)));
  }
  points.insert(points.begin() + 5, G1::identity());  // ... the middle
  points.push_back(G1::identity());                   // ... and the end
  const auto affine = batch_normalize(std::span<const G1>(points));
  ASSERT_EQ(affine.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].is_identity(), affine[i].is_identity()) << i;
    EXPECT_EQ(affine[i].to_jacobian(), points[i]) << i;
  }
}

TEST(BatchNormalize, AllIdentityAndEmpty) {
  const std::vector<G1> ids(5, G1::identity());
  const auto affine = batch_normalize(std::span<const G1>(ids));
  ASSERT_EQ(affine.size(), 5u);
  for (const auto& a : affine) EXPECT_TRUE(a.is_identity());
  EXPECT_TRUE(batch_normalize(std::span<const G1>{}).empty());
}

TEST(BatchNormalize, G2MatchesPerPointNormalization) {
  std::mt19937_64 rng(12);
  std::vector<G2> points;
  for (int i = 0; i < 6; ++i) {
    points.push_back(g2_mul_generator(random_field<Fr>(rng)));
  }
  points[3] = G2::identity();
  const auto affine = batch_normalize(std::span<const G2>(points));
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(affine[i].to_jacobian(), points[i]) << i;
  }
}

// --- mixed (Jacobian + affine) addition ------------------------------

TEST(MixedAdd, MatchesFullJacobianAdd) {
  std::mt19937_64 rng(21);
  for (int i = 0; i < 20; ++i) {
    const G1 p = g1_mul_generator(random_field<Fr>(rng));
    const G1 q = g1_mul_generator(random_field<Fr>(rng));
    const auto qa = batch_normalize(std::span<const G1>(&q, 1))[0];
    EXPECT_EQ(p + qa, p + q);
  }
}

TEST(MixedAdd, DoublingIdentityAndNegation) {
  std::mt19937_64 rng(22);
  const G1 p = g1_mul_generator(random_field<Fr>(rng));
  const auto pa = batch_normalize(std::span<const G1>(&p, 1))[0];
  EXPECT_EQ(p + pa, p.dbl());                       // P + P (mixed doubling)
  EXPECT_EQ(G1::identity() + pa, p);                // O + P
  EXPECT_EQ(p + G1Affine::identity(), p);           // P + O
  EXPECT_EQ(p + (-pa), G1::identity());             // P + (-P)
  EXPECT_EQ((-pa).to_jacobian() + pa, G1::identity());
}

// --- constant-time scalar multiplication -----------------------------

TEST(MulCt, G1MatchesVariableTime) {
  std::mt19937_64 rng(31);
  const G1 base = g1_mul_generator(random_field<Fr>(rng));
  for (const Fr& k : {Fr::zero(), Fr::one(), r_minus_one()}) {
    EXPECT_EQ(base.mul_ct(k), base.mul(k));
  }
  for (int i = 0; i < 10; ++i) {
    const Fr k = random_field<Fr>(rng);
    EXPECT_EQ(base.mul_ct(k), base.mul(k));
    EXPECT_EQ(G1::generator().mul_ct(k), g1_mul_generator(k));
  }
}

TEST(MulCt, G2MatchesVariableTime) {
  std::mt19937_64 rng(32);
  const G2 base = g2_mul_generator(random_field<Fr>(rng));
  for (const Fr& k : {Fr::zero(), Fr::one(), r_minus_one()}) {
    EXPECT_EQ(base.mul_ct(k), base.mul(k));
  }
  for (int i = 0; i < 5; ++i) {
    const Fr k = random_field<Fr>(rng);
    EXPECT_EQ(base.mul_ct(k), base.mul(k));
  }
}

TEST(MulCt, IdentityBase) {
  EXPECT_EQ(G1::identity().mul_ct(Fr::one()), G1::identity());
  EXPECT_EQ(G1::identity().mul_ct(r_minus_one()), G1::identity());
}

}  // namespace
}  // namespace zkdet::ec
