// Negative-path coverage for the soundness-critical entry points: an
// off-curve or wrong-subgroup point fed to the pairing, batch
// verification, or proof deserialization must be rejected
// deterministically — never silently folded into an unsound result.
// These tests pass identically under checked and unchecked builds:
// every rejection below rides on an always-on ZKDET_CHECK or an
// explicit nullopt/false path.
#include <gtest/gtest.h>

#include "check/check.hpp"
#include "curve_attack_helpers.hpp"
#include "ec/pairing.hpp"
#include "plonk/plonk.hpp"

namespace zkdet {
namespace {

using check::CheckFailure;
using check::ScopedThrowHandler;
using crypto::Drbg;
using ec::G1;
using ec::G2;
using ff::Fr;
using plonk::BatchEntry;
using plonk::ConstraintSystem;
using plonk::Proof;
using plonk::Srs;
using plonk::Var;

// --- pairing ------------------------------------------------------------

TEST(PairingNegative, OffCurveG1Rejected) {
  ScopedThrowHandler guard;
  EXPECT_THROW((void)ec::pairing(test::off_curve_g1(), G2::generator()),
               CheckFailure);
  EXPECT_THROW((void)ec::miller_loop(test::off_curve_g1(), G2::generator()),
               CheckFailure);
}

TEST(PairingNegative, OffCurveG2Rejected) {
  ScopedThrowHandler guard;
  EXPECT_THROW((void)ec::pairing(G1::generator(), test::off_curve_g2()),
               CheckFailure);
}

TEST(PairingNegative, WrongSubgroupG2Rejected) {
  ScopedThrowHandler guard;
  const G2 rogue = test::wrong_subgroup_g2();
  ASSERT_FALSE(rogue.is_identity());
  EXPECT_THROW((void)ec::pairing(G1::generator(), rogue), CheckFailure);
}

TEST(PairingNegative, ProductCheckRejectsBadPoints) {
  ScopedThrowHandler guard;
  EXPECT_THROW((void)ec::pairing_product_is_one(
                   test::off_curve_g1(), G2::generator(), G1::generator(),
                   G2::generator()),
               CheckFailure);
  const std::vector<std::pair<G1, G2>> pairs = {
      {G1::generator(), test::wrong_subgroup_g2()}};
  EXPECT_THROW((void)ec::pairing_product_is_one(
                   std::span<const std::pair<G1, G2>>(pairs)),
               CheckFailure);
}

TEST(PairingNegative, HonestInputsStillAccepted) {
  ScopedThrowHandler guard;
  // e(aP, Q) == e(P, aQ): validation must not disturb bilinearity.
  const Fr a = Fr::from_u64(77);
  EXPECT_EQ(ec::pairing(G1::generator().mul(a), G2::generator()),
            ec::pairing(G1::generator(), G2::generator().mul(a)));
}

// --- proof deserialization ----------------------------------------------

TEST(DeserializationNegative, OffCurveG1BytesRejected) {
  auto bytes = ec::g1_to_bytes(G1::generator());
  bytes[63] ^= 1;  // perturb y: leaves the curve (or goes non-canonical)
  EXPECT_FALSE(ec::g1_from_bytes(bytes).has_value());
}

TEST(DeserializationNegative, WrongSubgroupG2BytesRejected) {
  const G2 rogue = test::wrong_subgroup_g2();
  ASSERT_FALSE(rogue.is_identity());
  const auto bytes = ec::g2_to_bytes(rogue);
  // On the twist, canonical encoding — only the subgroup check can (and
  // must) refuse it.
  EXPECT_FALSE(ec::g2_from_bytes(bytes).has_value());
  EXPECT_TRUE(
      ec::g2_from_bytes(ec::g2_to_bytes(G2::generator())).has_value());
}

TEST(DeserializationNegative, ProofWithOffCurvePointRejected) {
  // A valid-length byte string whose first commitment is off the curve.
  const auto bad_point = test::off_curve_g1();
  std::vector<std::uint8_t> bytes(Proof::size_bytes(), 0);
  // x = 1, y = 1 big-endian in the first 64 bytes.
  bytes[31] = 1;
  bytes[63] = 1;
  EXPECT_FALSE(Proof::from_bytes(bytes).has_value());
  (void)bad_point;
}

TEST(DeserializationNegative, NonCanonicalScalarRejected) {
  std::vector<std::uint8_t> bytes(Proof::size_bytes(), 0);
  // All nine G1 slots are the identity (all zeros, accepted); make the
  // first Fr slot equal to the modulus (non-canonical).
  const auto mod = ff::u256_to_bytes(Fr::MOD);
  std::copy(mod.begin(), mod.end(), bytes.begin() + 9 * 64);
  EXPECT_FALSE(Proof::from_bytes(bytes).has_value());
}

// --- batch verification -------------------------------------------------

// x = w^3 + w + 5 with public x (the fixture circuit of test_plonk).
struct CubicCircuit {
  ConstraintSystem cs;
  std::vector<Fr> witness;

  explicit CubicCircuit(std::uint64_t w_val) {
    const Var w = cs.add_variable();
    const Var w2 = cs.add_variable();
    const Var w3 = cs.add_variable();
    const Var x = cs.add_variable();
    cs.set_public(x);
    cs.add_gate({Fr::one(), Fr::zero(), Fr::zero(), -Fr::one(), Fr::zero(), w,
                 w, w2});
    cs.add_gate({Fr::one(), Fr::zero(), Fr::zero(), -Fr::one(), Fr::zero(), w2,
                 w, w3});
    cs.add_gate({Fr::zero(), Fr::one(), Fr::one(), -Fr::one(), Fr::from_u64(5),
                 w3, w, x});
    const Fr wf = Fr::from_u64(w_val);
    witness = {Fr::zero(), wf, wf * wf, wf * wf * wf,
               wf * wf * wf + wf + Fr::from_u64(5)};
  }
};

class BatchNegativeFixture : public ::testing::Test {
 protected:
  static const Srs& srs() {
    static const Srs s = [] {
      Drbg rng(41);
      return Srs::setup(1 << 8, rng);
    }();
    return s;
  }
};

TEST_F(BatchNegativeFixture, OffCurveProofPointMakesBatchFalse) {
  CubicCircuit c(3);
  auto keys = preprocess(c.cs, srs());
  ASSERT_TRUE(keys.has_value());
  Drbg rng(42);
  auto proof = prove(keys->pk, c.cs, srs(), c.witness, rng);
  ASSERT_TRUE(proof.has_value());
  const std::vector<Fr> pub = {c.witness[4]};

  Proof tampered = *proof;
  tampered.cm_a = test::off_curve_g1();
  const BatchEntry entries[] = {{&keys->vk, &pub, &tampered}};
  EXPECT_FALSE(plonk::batch_verify(entries));
  EXPECT_FALSE(plonk::verify(keys->vk, pub, tampered));
}

TEST_F(BatchNegativeFixture, WrongSubgroupVkG2MakesBatchFalse) {
  CubicCircuit c(3);
  auto keys = preprocess(c.cs, srs());
  ASSERT_TRUE(keys.has_value());
  Drbg rng(43);
  auto proof = prove(keys->pk, c.cs, srs(), c.witness, rng);
  ASSERT_TRUE(proof.has_value());
  const std::vector<Fr> pub = {c.witness[4]};

  plonk::VerifyingKey bad_vk = keys->vk;
  bad_vk.g2_tau = test::wrong_subgroup_g2();
  ASSERT_FALSE(bad_vk.g2_tau.is_identity());
  const BatchEntry entries[] = {{&bad_vk, &pub, &*proof}};
  EXPECT_FALSE(plonk::batch_verify(entries));
  EXPECT_FALSE(plonk::verify(bad_vk, pub, *proof));

  plonk::VerifyingKey off_vk = keys->vk;
  off_vk.g2_gen = test::off_curve_g2();
  const BatchEntry entries2[] = {{&off_vk, &pub, &*proof}};
  EXPECT_FALSE(plonk::batch_verify(entries2));
}

TEST_F(BatchNegativeFixture, TamperedEntryDoesNotPoisonHonestOnes) {
  CubicCircuit c(3);
  auto keys = preprocess(c.cs, srs());
  ASSERT_TRUE(keys.has_value());
  Drbg rng(44);
  auto proof = prove(keys->pk, c.cs, srs(), c.witness, rng);
  ASSERT_TRUE(proof.has_value());
  const std::vector<Fr> pub = {c.witness[4]};

  // Honest batch accepts; adding a tampered entry flips it to false.
  const BatchEntry honest[] = {{&keys->vk, &pub, &*proof}};
  EXPECT_TRUE(plonk::batch_verify(honest));

  Proof tampered = *proof;
  tampered.cm_z = test::off_curve_g1();
  const BatchEntry mixed[] = {{&keys->vk, &pub, &*proof},
                              {&keys->vk, &pub, &tampered}};
  EXPECT_FALSE(plonk::batch_verify(mixed));
}

}  // namespace
}  // namespace zkdet
