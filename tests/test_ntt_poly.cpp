#include <gtest/gtest.h>

#include <random>

#include "ff/ntt.hpp"
#include "ff/polynomial.hpp"

namespace zkdet::ff {
namespace {

std::vector<Fr> random_coeffs(std::size_t n, std::mt19937_64& rng) {
  std::vector<Fr> v(n);
  for (auto& x : v) x = random_field<Fr>(rng);
  return v;
}

class NttRoundtrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NttRoundtrip, FftIfftIsIdentity) {
  const std::size_t n = GetParam();
  EvaluationDomain d(n);
  std::mt19937_64 rng(n);
  const std::vector<Fr> orig = random_coeffs(n, rng);
  std::vector<Fr> v = orig;
  d.fft(v);
  d.ifft(v);
  EXPECT_EQ(v, orig);
}

TEST_P(NttRoundtrip, CosetRoundtrip) {
  const std::size_t n = GetParam();
  EvaluationDomain d(n);
  std::mt19937_64 rng(n + 1);
  const std::vector<Fr> orig = random_coeffs(n, rng);
  std::vector<Fr> v = orig;
  const Fr shift = Fr::generator();
  d.coset_fft(v, shift);
  d.coset_ifft(v, shift);
  EXPECT_EQ(v, orig);
}

TEST_P(NttRoundtrip, FftMatchesDirectEvaluation) {
  const std::size_t n = GetParam();
  if (n > 64) return;  // direct evaluation is O(n^2)
  EvaluationDomain d(n);
  std::mt19937_64 rng(n + 2);
  const std::vector<Fr> coeffs = random_coeffs(n, rng);
  std::vector<Fr> evals = coeffs;
  d.fft(evals);
  const Polynomial p{coeffs};
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(evals[i], p.evaluate(d.element(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NttRoundtrip,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024));

TEST(Ntt, RejectsNonPowerOfTwo) {
  EXPECT_THROW(EvaluationDomain(3), std::invalid_argument);
  EXPECT_THROW(EvaluationDomain(0), std::invalid_argument);
  EXPECT_THROW(EvaluationDomain(48), std::invalid_argument);
}

TEST(Ntt, OmegaHasExactOrder) {
  EvaluationDomain d(16);
  Fr x = d.omega();
  for (int i = 0; i < 3; ++i) x = x.square();  // omega^8
  EXPECT_NE(x, Fr::one());
  EXPECT_EQ(x.square(), Fr::one());
}

TEST(Ntt, VanishingPolynomial) {
  EvaluationDomain d(8);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(d.vanishing_at(d.element(i)).is_zero());
  }
  EXPECT_FALSE(d.vanishing_at(Fr::from_u64(12345)).is_zero());
}

TEST(Ntt, LagrangeBasis) {
  EvaluationDomain d(8);
  const Fr x = Fr::from_u64(987654321);
  // sum of all Lagrange polynomials is 1
  Fr sum = Fr::zero();
  for (std::size_t i = 0; i < 8; ++i) sum += d.lagrange_at(i, x);
  EXPECT_EQ(sum, Fr::one());
  // batch version agrees
  const std::vector<Fr> all = d.all_lagrange_at(x);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(all[i], d.lagrange_at(i, x));
}

TEST(Ntt, LagrangeInterpolation) {
  EvaluationDomain d(8);
  std::mt19937_64 rng(42);
  std::vector<Fr> evals = random_coeffs(8, rng);
  const Polynomial p = Polynomial::from_evaluations(evals, d);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(p.evaluate(d.element(i)), evals[i]);
  }
}

TEST(Polynomial, EvaluateHorner) {
  // p(x) = 3x^2 + 2x + 1
  const Polynomial p{{Fr::from_u64(1), Fr::from_u64(2), Fr::from_u64(3)}};
  EXPECT_EQ(p.evaluate(Fr::from_u64(2)), Fr::from_u64(17));
  EXPECT_EQ(p.evaluate(Fr::zero()), Fr::from_u64(1));
  EXPECT_EQ(p.degree(), 2u);
}

TEST(Polynomial, AddSub) {
  const Polynomial a{{Fr::from_u64(1), Fr::from_u64(2)}};
  const Polynomial b{{Fr::from_u64(5), Fr::zero(), Fr::from_u64(7)}};
  const Polynomial s = a + b;
  EXPECT_EQ(s.evaluate(Fr::from_u64(3)),
            a.evaluate(Fr::from_u64(3)) + b.evaluate(Fr::from_u64(3)));
  const Polynomial dd = a - b;
  EXPECT_EQ(dd.evaluate(Fr::from_u64(3)),
            a.evaluate(Fr::from_u64(3)) - b.evaluate(Fr::from_u64(3)));
}

TEST(Polynomial, MulMatchesEvaluation) {
  std::mt19937_64 rng(7);
  const Polynomial a{random_coeffs(13, rng)};
  const Polynomial b{random_coeffs(9, rng)};
  const Polynomial prod = a * b;
  EXPECT_EQ(prod.degree(), a.degree() + b.degree());
  for (int i = 0; i < 10; ++i) {
    const Fr x = random_field<Fr>(rng);
    EXPECT_EQ(prod.evaluate(x), a.evaluate(x) * b.evaluate(x));
  }
}

TEST(Polynomial, MulByZero) {
  const Polynomial z = Polynomial::zero();
  const Polynomial a{{Fr::from_u64(1), Fr::from_u64(2)}};
  EXPECT_TRUE((z * a).is_zero());
}

TEST(Polynomial, DivideByLinear) {
  std::mt19937_64 rng(8);
  Polynomial p{random_coeffs(16, rng)};
  const Fr z = random_field<Fr>(rng);
  // force p(z) = 0 by subtracting the constant
  p -= Polynomial::constant(p.evaluate(z));
  const Polynomial q = p.divide_by_linear(z);
  // q * (x - z) == p
  const Polynomial back =
      q * Polynomial{{-z, Fr::one()}};
  for (int i = 0; i < 5; ++i) {
    const Fr x = random_field<Fr>(rng);
    EXPECT_EQ(back.evaluate(x), p.evaluate(x));
  }
}

TEST(Polynomial, DivideByVanishingExact) {
  std::mt19937_64 rng(9);
  const std::size_t n = 8;
  const Polynomial q{random_coeffs(10, rng)};
  // p = q * (x^n - 1)
  Polynomial zh{std::vector<Fr>(n + 1, Fr::zero())};
  zh.coeffs()[0] = -Fr::one();
  zh.coeffs()[n] = Fr::one();
  const Polynomial p = q * zh;
  Polynomial rem;
  const Polynomial q2 = p.divide_by_vanishing(n, &rem);
  EXPECT_TRUE(rem.is_zero());
  for (int i = 0; i < 5; ++i) {
    const Fr x = random_field<Fr>(rng);
    EXPECT_EQ(q2.evaluate(x), q.evaluate(x));
  }
}

TEST(Polynomial, DivideByVanishingRemainder) {
  // p = x + 5, n = 4: quotient 0, remainder p
  const Polynomial p{{Fr::from_u64(5), Fr::one()}};
  Polynomial rem;
  const Polynomial q = p.divide_by_vanishing(4, &rem);
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(rem.evaluate(Fr::from_u64(3)), Fr::from_u64(8));
}

TEST(Polynomial, ShiftAndDilate) {
  std::mt19937_64 rng(10);
  const Polynomial p{random_coeffs(6, rng)};
  const Fr x = random_field<Fr>(rng);
  const Fr s = Fr::from_u64(3);
  EXPECT_EQ(p.shifted(2).evaluate(x), p.evaluate(x) * x * x);
  EXPECT_EQ(p.dilated(s).evaluate(x), p.evaluate(s * x));
  EXPECT_EQ(p.scaled(s).evaluate(x), s * p.evaluate(x));
}

TEST(Polynomial, TrimRemovesHighZeros) {
  Polynomial p{{Fr::one(), Fr::zero(), Fr::zero()}};
  p.trim();
  EXPECT_EQ(p.coeffs().size(), 1u);
  Polynomial z{{Fr::zero(), Fr::zero()}};
  z.trim();
  EXPECT_TRUE(z.coeffs().empty());
}

}  // namespace
}  // namespace zkdet::ff
