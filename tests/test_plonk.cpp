#include <gtest/gtest.h>

#include "plonk/plonk.hpp"

#include "ec/pairing.hpp"

namespace zkdet::plonk {
namespace {

using crypto::Drbg;
using ff::Fr;

// x = w^3 + w + 5 with public x.
struct CubicCircuit {
  ConstraintSystem cs;
  std::vector<Fr> witness;

  explicit CubicCircuit(std::uint64_t w_val) {
    const Var w = cs.add_variable();
    const Var w2 = cs.add_variable();
    const Var w3 = cs.add_variable();
    const Var x = cs.add_variable();
    cs.set_public(x);
    cs.add_gate({Fr::one(), Fr::zero(), Fr::zero(), -Fr::one(), Fr::zero(), w,
                 w, w2});
    cs.add_gate({Fr::one(), Fr::zero(), Fr::zero(), -Fr::one(), Fr::zero(), w2,
                 w, w3});
    cs.add_gate({Fr::zero(), Fr::one(), Fr::one(), -Fr::one(), Fr::from_u64(5),
                 w3, w, x});
    const Fr wf = Fr::from_u64(w_val);
    witness = {Fr::zero(), wf, wf * wf, wf * wf * wf,
               wf * wf * wf + wf + Fr::from_u64(5)};
  }
};

class PlonkFixture : public ::testing::Test {
 protected:
  static const Srs& srs() {
    static const Srs s = [] {
      Drbg rng(1);
      return Srs::setup(1 << 11, rng);
    }();
    return s;
  }
};

TEST_F(PlonkFixture, RoundtripCubic) {
  CubicCircuit c(3);
  ASSERT_TRUE(c.cs.is_satisfied(c.witness));
  auto keys = preprocess(c.cs, srs());
  ASSERT_TRUE(keys.has_value());
  Drbg rng(2);
  auto proof = prove(keys->pk, c.cs, srs(), c.witness, rng);
  ASSERT_TRUE(proof.has_value());
  EXPECT_TRUE(verify(keys->vk, {c.witness[4]}, *proof));
}

TEST_F(PlonkFixture, WrongPublicInputRejected) {
  CubicCircuit c(3);
  auto keys = preprocess(c.cs, srs());
  Drbg rng(3);
  auto proof = prove(keys->pk, c.cs, srs(), c.witness, rng);
  ASSERT_TRUE(proof.has_value());
  EXPECT_FALSE(verify(keys->vk, {c.witness[4] + Fr::one()}, *proof));
  EXPECT_FALSE(verify(keys->vk, {}, *proof));
  EXPECT_FALSE(verify(keys->vk, {c.witness[4], Fr::one()}, *proof));
}

TEST_F(PlonkFixture, UnsatisfiedWitnessRejectedByProver) {
  CubicCircuit c(3);
  auto keys = preprocess(c.cs, srs());
  c.witness[4] += Fr::one();
  Drbg rng(4);
  EXPECT_FALSE(prove(keys->pk, c.cs, srs(), c.witness, rng).has_value());
}

TEST_F(PlonkFixture, EveryProofFieldIsBindings) {
  CubicCircuit c(3);
  auto keys = preprocess(c.cs, srs());
  Drbg rng(5);
  auto proof = prove(keys->pk, c.cs, srs(), c.witness, rng);
  ASSERT_TRUE(proof.has_value());
  const std::vector<Fr> pub{c.witness[4]};
  const auto tamper_g1 = [&](ec::G1 Proof::* field) {
    Proof bad = *proof;
    bad.*field = (bad.*field) + ec::G1::generator();
    return verify(keys->vk, pub, bad);
  };
  EXPECT_FALSE(tamper_g1(&Proof::cm_a));
  EXPECT_FALSE(tamper_g1(&Proof::cm_b));
  EXPECT_FALSE(tamper_g1(&Proof::cm_c));
  EXPECT_FALSE(tamper_g1(&Proof::cm_z));
  EXPECT_FALSE(tamper_g1(&Proof::cm_t_lo));
  EXPECT_FALSE(tamper_g1(&Proof::cm_t_mid));
  EXPECT_FALSE(tamper_g1(&Proof::cm_t_hi));
  EXPECT_FALSE(tamper_g1(&Proof::w_zeta));
  EXPECT_FALSE(tamper_g1(&Proof::w_zeta_omega));
  const auto tamper_fr = [&](Fr Proof::* field) {
    Proof bad = *proof;
    bad.*field += Fr::one();
    return verify(keys->vk, pub, bad);
  };
  EXPECT_FALSE(tamper_fr(&Proof::eval_a));
  EXPECT_FALSE(tamper_fr(&Proof::eval_b));
  EXPECT_FALSE(tamper_fr(&Proof::eval_c));
  EXPECT_FALSE(tamper_fr(&Proof::eval_s1));
  EXPECT_FALSE(tamper_fr(&Proof::eval_s2));
  EXPECT_FALSE(tamper_fr(&Proof::eval_z_omega));
}

TEST_F(PlonkFixture, ProofIsConstantSize) {
  CubicCircuit c(3);
  auto keys = preprocess(c.cs, srs());
  Drbg rng(6);
  auto proof = prove(keys->pk, c.cs, srs(), c.witness, rng);
  ASSERT_TRUE(proof.has_value());
  EXPECT_EQ(proof->to_bytes().size(), Proof::size_bytes());
  EXPECT_EQ(Proof::size_bytes(), 9u * 64u + 6u * 32u);
}

TEST_F(PlonkFixture, ProofsAreRandomized) {
  // zero-knowledge smoke: two proofs of the same statement differ.
  CubicCircuit c(3);
  auto keys = preprocess(c.cs, srs());
  Drbg rng1(7), rng2(8);
  auto p1 = prove(keys->pk, c.cs, srs(), c.witness, rng1);
  auto p2 = prove(keys->pk, c.cs, srs(), c.witness, rng2);
  ASSERT_TRUE(p1 && p2);
  EXPECT_NE(p1->to_bytes(), p2->to_bytes());
  EXPECT_TRUE(verify(keys->vk, {c.witness[4]}, *p1));
  EXPECT_TRUE(verify(keys->vk, {c.witness[4]}, *p2));
}

TEST_F(PlonkFixture, DifferentWitnessSamePublicBothVerify) {
  // The relation w^2 = x has two witnesses w and -w; both must prove.
  ConstraintSystem cs;
  const Var w = cs.add_variable();
  const Var x = cs.add_variable();
  cs.set_public(x);
  cs.add_gate({Fr::one(), Fr::zero(), Fr::zero(), -Fr::one(), Fr::zero(), w, w,
               x});
  auto keys = preprocess(cs, srs());
  ASSERT_TRUE(keys);
  Drbg rng(9);
  const Fr wv = Fr::from_u64(6);
  const Fr xv = wv * wv;
  auto p1 = prove(keys->pk, cs, srs(), {Fr::zero(), wv, xv}, rng);
  auto p2 = prove(keys->pk, cs, srs(), {Fr::zero(), -wv, xv}, rng);
  ASSERT_TRUE(p1 && p2);
  EXPECT_TRUE(verify(keys->vk, {xv}, *p1));
  EXPECT_TRUE(verify(keys->vk, {xv}, *p2));
}

TEST_F(PlonkFixture, SrsTooSmallFailsGracefully) {
  ConstraintSystem cs;
  const Var a = cs.add_variable();
  for (int i = 0; i < 3000; ++i) {
    cs.add_gate({Fr::zero(), Fr::one(), Fr::zero(), Fr::zero(), Fr::zero(), a,
                 0, 0});
  }
  // domain 4096 > srs 2048
  EXPECT_FALSE(preprocess(cs, srs()).has_value());
}

TEST_F(PlonkFixture, ManyPublicInputs) {
  ConstraintSystem cs;
  std::vector<Var> pubs;
  std::vector<Fr> wit{Fr::zero()};
  Fr sum = Fr::zero();
  for (int i = 0; i < 20; ++i) {
    const Var v = cs.add_variable();
    cs.set_public(v);
    pubs.push_back(v);
    wit.push_back(Fr::from_u64(static_cast<std::uint64_t>(i) * 3 + 1));
    sum += wit.back();
  }
  // sum constraint via chain
  Var acc = pubs[0];
  for (std::size_t i = 1; i < pubs.size(); ++i) {
    const Var nxt = cs.add_variable();
    cs.add_gate({Fr::zero(), Fr::one(), Fr::one(), -Fr::one(), Fr::zero(), acc,
                 pubs[i], nxt});
    wit.push_back(wit[acc] + wit[pubs[i]]);
    acc = nxt;
  }
  const Var total = cs.add_variable();
  cs.set_public(total);
  wit.push_back(sum);
  cs.add_gate({Fr::zero(), Fr::one(), -Fr::one(), Fr::zero(), Fr::zero(), acc,
               total, 0});

  auto keys = preprocess(cs, srs());
  ASSERT_TRUE(keys);
  Drbg rng(10);
  ASSERT_TRUE(cs.is_satisfied(wit));
  auto proof = prove(keys->pk, cs, srs(), wit, rng);
  ASSERT_TRUE(proof);
  std::vector<Fr> pub_vals = cs.extract_public_inputs(wit);
  EXPECT_EQ(pub_vals.size(), 21u);
  EXPECT_TRUE(verify(keys->vk, pub_vals, *proof));
  pub_vals[20] += Fr::one();
  EXPECT_FALSE(verify(keys->vk, pub_vals, *proof));
}

// --- attributed batch verification (batched settlement substrate) ---

// x = w^2 + 1 with public x: a second circuit shape, so batches can mix
// different verifying keys under one SRS.
struct SquareCircuit {
  ConstraintSystem cs;
  std::vector<Fr> witness;

  explicit SquareCircuit(std::uint64_t w_val) {
    const Var w = cs.add_variable();
    const Var x = cs.add_variable();
    cs.set_public(x);
    cs.add_gate({Fr::one(), Fr::zero(), Fr::zero(), -Fr::one(), Fr::one(), w,
                 w, x});
    const Fr wf = Fr::from_u64(w_val);
    witness = {Fr::zero(), wf, wf * wf + Fr::one()};
  }
};

// One proved statement, self-contained so BatchEntry pointers stay
// valid for the fixture's lifetime.
struct ProvedCubic {
  CubicCircuit circ;
  KeyPairResult keys;
  std::vector<Fr> publics;
  Proof proof;

  ProvedCubic(std::uint64_t w, const Srs& srs, std::uint64_t seed)
      : circ(w), keys(*preprocess(circ.cs, srs)) {
    Drbg rng(seed);
    proof = *prove(keys.pk, circ.cs, srs, circ.witness, rng);
    publics = {circ.witness[4]};
  }

  [[nodiscard]] BatchEntry entry() const {
    return {&keys.vk, &publics, &proof};
  }
};

// Structurally valid but unsound proof: survives verify_prepare, fails
// the pairing — the case that exercises fold-failure bisection.
Proof tampered(const Proof& p) {
  Proof bad = p;
  bad.eval_a += Fr::one();
  return bad;
}

TEST_F(PlonkFixture, BatchEmptyIsVacuouslyOk) {
  const BatchResult r = batch_verify_attributed({});
  EXPECT_TRUE(r.all_ok());
  EXPECT_EQ(r.invalid_count(), 0u);
  EXPECT_EQ(r.pairing_checks, 0u);
  EXPECT_TRUE(batch_verify({}));
}

TEST_F(PlonkFixture, BatchOfOneMatchesIndividualVerifyOutcome) {
  const ProvedCubic a(3, srs(), 101);
  {
    const BatchEntry e = a.entry();
    const BatchResult r = batch_verify_attributed({&e, 1});
    EXPECT_EQ(r.ok[0] != 0, verify(a.keys.vk, a.publics, a.proof));
    EXPECT_TRUE(r.all_ok());
    EXPECT_EQ(r.pairing_checks, 1u);  // no fold, the direct check only
    EXPECT_EQ(r.srs_groups, 1u);
  }
  {
    const Proof bad = tampered(a.proof);
    const BatchEntry e{&a.keys.vk, &a.publics, &bad};
    const BatchResult r = batch_verify_attributed({&e, 1});
    EXPECT_EQ(r.ok[0] != 0, verify(a.keys.vk, a.publics, bad));
    EXPECT_FALSE(r.all_ok());
    EXPECT_EQ(r.invalid_count(), 1u);
    EXPECT_EQ(r.pairing_checks, 1u);
  }
}

TEST_F(PlonkFixture, BatchAttributesOneBadAmongGoodAtEveryPosition) {
  // Distinct statements (different witnesses) under one vk. The bad
  // proof is tried at every position; only it may be rejected.
  std::vector<ProvedCubic> good;
  good.reserve(4);
  for (std::uint64_t w = 2; w <= 5; ++w) {
    good.emplace_back(w, srs(), 200 + w);
  }
  for (std::size_t bad_at = 0; bad_at < good.size(); ++bad_at) {
    const Proof bad = tampered(good[bad_at].proof);
    std::vector<BatchEntry> entries;
    for (std::size_t i = 0; i < good.size(); ++i) {
      entries.push_back(good[i].entry());
      if (i == bad_at) entries.back().proof = &bad;
    }
    const BatchResult r = batch_verify_attributed(entries);
    for (std::size_t i = 0; i < good.size(); ++i) {
      EXPECT_EQ(r.ok[i] != 0, i != bad_at) << "bad_at=" << bad_at;
    }
    EXPECT_EQ(r.invalid_count(), 1u);
    EXPECT_GT(r.pairing_checks, 1u);  // fold failed, bisection ran
    EXPECT_FALSE(batch_verify(entries));
  }
}

TEST_F(PlonkFixture, BatchAllBadAttributesEveryEntry) {
  std::vector<ProvedCubic> good;
  for (std::uint64_t w = 2; w <= 4; ++w) good.emplace_back(w, srs(), 300 + w);
  std::vector<Proof> bads;
  for (const auto& g : good) bads.push_back(tampered(g.proof));
  std::vector<BatchEntry> entries;
  for (std::size_t i = 0; i < good.size(); ++i) {
    entries.push_back(good[i].entry());
    entries[i].proof = &bads[i];
  }
  const BatchResult r = batch_verify_attributed(entries);
  EXPECT_EQ(r.invalid_count(), entries.size());
  for (const auto v : r.ok) EXPECT_EQ(v, 0u);
}

TEST_F(PlonkFixture, BatchMixedVksFoldSoundlyAndSwapIsAttributed) {
  // Two circuits, two verifying keys, one SRS: the honest batch folds
  // into one pairing product; swapping the proofs between the two
  // statements must reject BOTH entries (each proof is bound to its own
  // statement by the fold weights).
  CubicCircuit ca(3);
  SquareCircuit cb(6);
  auto ka = *preprocess(ca.cs, srs());
  auto kb = *preprocess(cb.cs, srs());
  Drbg ra(401);
  Drbg rb(402);
  const Proof pa = *prove(ka.pk, ca.cs, srs(), ca.witness, ra);
  const Proof pb = *prove(kb.pk, cb.cs, srs(), cb.witness, rb);
  const std::vector<Fr> puba = {ca.witness[4]};
  const std::vector<Fr> pubb = {cb.witness[2]};

  const std::vector<BatchEntry> honest = {{&ka.vk, &puba, &pa},
                                          {&kb.vk, &pubb, &pb}};
  const BatchResult hr = batch_verify_attributed(honest);
  EXPECT_TRUE(hr.all_ok());
  EXPECT_EQ(hr.srs_groups, 1u);
  EXPECT_EQ(hr.pairing_checks, 1u);  // one fold covered both circuits

  const std::vector<BatchEntry> swapped = {{&ka.vk, &puba, &pb},
                                           {&kb.vk, &pubb, &pa}};
  const BatchResult sr = batch_verify_attributed(swapped);
  EXPECT_EQ(sr.ok[0], 0u);
  EXPECT_EQ(sr.ok[1], 0u);
  EXPECT_EQ(sr.invalid_count(), 2u);
  EXPECT_FALSE(batch_verify(swapped));
}

TEST_F(PlonkFixture, BatchWrongSrsEntryIsAttributedNotFatal) {
  // An entry preprocessed under a DIFFERENT SRS used to reject the
  // whole batch; now it folds in its own (g2_gen, g2_tau) group and
  // only its own validity decides its verdict.
  const ProvedCubic a(3, srs(), 501);
  Drbg rng2(77);
  const Srs srs2 = Srs::setup(1 << 11, rng2);
  CubicCircuit c2(4);
  auto k2 = *preprocess(c2.cs, srs2);
  Drbg rp(502);
  const Proof p2 = *prove(k2.pk, c2.cs, srs2, c2.witness, rp);
  const std::vector<Fr> pub2 = {c2.witness[4]};

  {
    const std::vector<BatchEntry> entries = {a.entry(), {&k2.vk, &pub2, &p2}};
    const BatchResult r = batch_verify_attributed(entries);
    EXPECT_TRUE(r.all_ok());  // both valid under their own SRS
    EXPECT_EQ(r.srs_groups, 2u);
    EXPECT_EQ(r.pairing_checks, 2u);  // one product per group
  }
  {
    const Proof bad = tampered(p2);
    const std::vector<BatchEntry> entries = {a.entry(), {&k2.vk, &pub2, &bad}};
    const BatchResult r = batch_verify_attributed(entries);
    EXPECT_EQ(r.ok[0], 1u);  // honest entry unaffected
    EXPECT_EQ(r.ok[1], 0u);  // foreign-SRS forgery attributed to itself
    EXPECT_FALSE(batch_verify(entries));
  }
}

TEST_F(PlonkFixture, BatchDuplicateEntriesCannotMaskAThirdInvalid) {
  // The same (vk, inputs, proof) submitted twice draws two DIFFERENT
  // fold weights (each challenge is bound to the entry's position and
  // the chained transcript state), so weighted cancellation cannot hide
  // another entry's invalidity.
  const ProvedCubic good(3, srs(), 601);
  const ProvedCubic other(4, srs(), 602);
  const Proof bad = tampered(other.proof);

  {
    // [good, good, bad]: duplicates stay valid, the forgery is caught.
    std::vector<BatchEntry> entries = {good.entry(), good.entry(),
                                       other.entry()};
    entries[2].proof = &bad;
    const BatchResult r = batch_verify_attributed(entries);
    EXPECT_EQ(r.ok[0], 1u);
    EXPECT_EQ(r.ok[1], 1u);
    EXPECT_EQ(r.ok[2], 0u);
  }
  {
    // [bad, bad, good]: a duplicated forgery cannot cancel itself out.
    std::vector<BatchEntry> entries = {other.entry(), other.entry(),
                                       good.entry()};
    entries[0].proof = &bad;
    entries[1].proof = &bad;
    const BatchResult r = batch_verify_attributed(entries);
    EXPECT_EQ(r.ok[0], 0u);
    EXPECT_EQ(r.ok[1], 0u);
    EXPECT_EQ(r.ok[2], 1u);
    EXPECT_EQ(r.invalid_count(), 2u);
  }
}

TEST(ConstraintSystem, SatisfiabilityChecks) {
  ConstraintSystem cs;
  const Var a = cs.add_variable();
  const Var b = cs.add_variable();
  cs.add_gate({Fr::one(), Fr::zero(), Fr::zero(), -Fr::one(), Fr::zero(), a, a,
               b});
  EXPECT_TRUE(cs.is_satisfied({Fr::zero(), Fr::from_u64(3), Fr::from_u64(9)}));
  EXPECT_FALSE(cs.is_satisfied({Fr::zero(), Fr::from_u64(3), Fr::from_u64(8)}));
  // nonzero zero-var rejected
  EXPECT_FALSE(cs.is_satisfied({Fr::one(), Fr::from_u64(3), Fr::from_u64(9)}));
  // short witness rejected
  EXPECT_FALSE(cs.is_satisfied({Fr::zero()}));
}

TEST(ConstraintSystem, DomainSizePadding) {
  ConstraintSystem cs;
  EXPECT_EQ(cs.domain_size(), 8u);
  const Var a = cs.add_variable();
  for (int i = 0; i < 9; ++i) {
    cs.add_gate({Fr::zero(), Fr::one(), Fr::zero(), Fr::zero(), Fr::zero(), a,
                 0, 0});
  }
  EXPECT_EQ(cs.domain_size(), 16u);
}

TEST(Transcript, DeterministicAndOrderSensitive) {
  Transcript t1("test");
  Transcript t2("test");
  t1.absorb_u64(5);
  t2.absorb_u64(5);
  EXPECT_EQ(t1.challenge("c"), t2.challenge("c"));
  Transcript t3("test");
  t3.absorb_u64(6);
  EXPECT_NE(t1.challenge("d"), t3.challenge("d"));
}

TEST(Transcript, LabelSeparation) {
  Transcript t1("test");
  Transcript t2("test");
  EXPECT_NE(t1.challenge("alpha"), t2.challenge("beta"));
}

TEST(Srs, CommitmentIsHomomorphic) {
  Drbg rng(11);
  const Srs srs = Srs::setup(16, rng);
  const ff::Polynomial p{{Fr::from_u64(1), Fr::from_u64(2)}};
  const ff::Polynomial q{{Fr::from_u64(5), Fr::zero(), Fr::from_u64(3)}};
  EXPECT_EQ(srs.commit(p + q), srs.commit(p) + srs.commit(q));
}

TEST(Srs, EmptySrsHasZeroMaxDegree) {
  // Regression: max_degree() on a default-constructed Srs used to
  // compute g1_powers.size() - 1 == 2^64 - 1 (unsigned underflow),
  // making every "does the circuit fit" check pass vacuously.
  const Srs empty;
  EXPECT_EQ(empty.max_degree(), 0u);
}

TEST(Srs, PreprocessRejectsEmptySrs) {
  // Pre-fix, the underflowed max_degree() let preprocess proceed and
  // index past the end of the empty power table.
  CubicCircuit c(3);
  const Srs empty;
  EXPECT_FALSE(preprocess(c.cs, empty).has_value());
}

TEST(Srs, CommitEmptyPolynomialIsIdentity) {
  // Regression: commit() formatted coeffs.size() - 1 into its degree
  // check for empty input (underflow again); the zero polynomial must
  // commit to the identity instead.
  Drbg rng(13);
  const Srs srs = Srs::setup(8, rng);
  EXPECT_EQ(srs.commit(std::span<const Fr>{}), ec::G1::identity());
  EXPECT_EQ(srs.commit(ff::Polynomial{}), srs.commit(std::span<const Fr>{}));
}

TEST(Srs, AffinePowersMatchJacobian) {
  Drbg rng(14);
  const Srs srs = Srs::setup(8, rng);
  const auto affine = srs.g1_powers_affine();
  ASSERT_EQ(affine.size(), srs.g1_powers.size());
  for (std::size_t i = 0; i < affine.size(); ++i) {
    EXPECT_EQ(affine[i].to_jacobian(), srs.g1_powers[i]) << i;
  }
  // Copies share the lazily built cache (shared_ptr member).
  const Srs copy = srs;
  EXPECT_EQ(copy.g1_powers_affine().size(), affine.size());
}

TEST(Srs, PowersConsistent) {
  Drbg rng(12);
  const Srs srs = Srs::setup(8, rng);
  EXPECT_EQ(srs.g1_powers.size(), 9u);
  EXPECT_EQ(srs.g1_powers[0], ec::G1::generator());
  // e(tau^i G, H) == e(tau^(i-1) G, tau H)
  for (int i = 1; i < 4; ++i) {
    EXPECT_TRUE(ec::pairing_product_is_one(
        srs.g1_powers[static_cast<std::size_t>(i)], srs.g2_gen,
        -srs.g1_powers[static_cast<std::size_t>(i - 1)], srs.g2_tau));
  }
}

}  // namespace
}  // namespace zkdet::plonk
