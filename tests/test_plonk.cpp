#include <gtest/gtest.h>

#include "plonk/plonk.hpp"

#include "ec/pairing.hpp"

namespace zkdet::plonk {
namespace {

using crypto::Drbg;
using ff::Fr;

// x = w^3 + w + 5 with public x.
struct CubicCircuit {
  ConstraintSystem cs;
  std::vector<Fr> witness;

  explicit CubicCircuit(std::uint64_t w_val) {
    const Var w = cs.add_variable();
    const Var w2 = cs.add_variable();
    const Var w3 = cs.add_variable();
    const Var x = cs.add_variable();
    cs.set_public(x);
    cs.add_gate({Fr::one(), Fr::zero(), Fr::zero(), -Fr::one(), Fr::zero(), w,
                 w, w2});
    cs.add_gate({Fr::one(), Fr::zero(), Fr::zero(), -Fr::one(), Fr::zero(), w2,
                 w, w3});
    cs.add_gate({Fr::zero(), Fr::one(), Fr::one(), -Fr::one(), Fr::from_u64(5),
                 w3, w, x});
    const Fr wf = Fr::from_u64(w_val);
    witness = {Fr::zero(), wf, wf * wf, wf * wf * wf,
               wf * wf * wf + wf + Fr::from_u64(5)};
  }
};

class PlonkFixture : public ::testing::Test {
 protected:
  static const Srs& srs() {
    static const Srs s = [] {
      Drbg rng(1);
      return Srs::setup(1 << 11, rng);
    }();
    return s;
  }
};

TEST_F(PlonkFixture, RoundtripCubic) {
  CubicCircuit c(3);
  ASSERT_TRUE(c.cs.is_satisfied(c.witness));
  auto keys = preprocess(c.cs, srs());
  ASSERT_TRUE(keys.has_value());
  Drbg rng(2);
  auto proof = prove(keys->pk, c.cs, srs(), c.witness, rng);
  ASSERT_TRUE(proof.has_value());
  EXPECT_TRUE(verify(keys->vk, {c.witness[4]}, *proof));
}

TEST_F(PlonkFixture, WrongPublicInputRejected) {
  CubicCircuit c(3);
  auto keys = preprocess(c.cs, srs());
  Drbg rng(3);
  auto proof = prove(keys->pk, c.cs, srs(), c.witness, rng);
  ASSERT_TRUE(proof.has_value());
  EXPECT_FALSE(verify(keys->vk, {c.witness[4] + Fr::one()}, *proof));
  EXPECT_FALSE(verify(keys->vk, {}, *proof));
  EXPECT_FALSE(verify(keys->vk, {c.witness[4], Fr::one()}, *proof));
}

TEST_F(PlonkFixture, UnsatisfiedWitnessRejectedByProver) {
  CubicCircuit c(3);
  auto keys = preprocess(c.cs, srs());
  c.witness[4] += Fr::one();
  Drbg rng(4);
  EXPECT_FALSE(prove(keys->pk, c.cs, srs(), c.witness, rng).has_value());
}

TEST_F(PlonkFixture, EveryProofFieldIsBindings) {
  CubicCircuit c(3);
  auto keys = preprocess(c.cs, srs());
  Drbg rng(5);
  auto proof = prove(keys->pk, c.cs, srs(), c.witness, rng);
  ASSERT_TRUE(proof.has_value());
  const std::vector<Fr> pub{c.witness[4]};
  const auto tamper_g1 = [&](ec::G1 Proof::* field) {
    Proof bad = *proof;
    bad.*field = (bad.*field) + ec::G1::generator();
    return verify(keys->vk, pub, bad);
  };
  EXPECT_FALSE(tamper_g1(&Proof::cm_a));
  EXPECT_FALSE(tamper_g1(&Proof::cm_b));
  EXPECT_FALSE(tamper_g1(&Proof::cm_c));
  EXPECT_FALSE(tamper_g1(&Proof::cm_z));
  EXPECT_FALSE(tamper_g1(&Proof::cm_t_lo));
  EXPECT_FALSE(tamper_g1(&Proof::cm_t_mid));
  EXPECT_FALSE(tamper_g1(&Proof::cm_t_hi));
  EXPECT_FALSE(tamper_g1(&Proof::w_zeta));
  EXPECT_FALSE(tamper_g1(&Proof::w_zeta_omega));
  const auto tamper_fr = [&](Fr Proof::* field) {
    Proof bad = *proof;
    bad.*field += Fr::one();
    return verify(keys->vk, pub, bad);
  };
  EXPECT_FALSE(tamper_fr(&Proof::eval_a));
  EXPECT_FALSE(tamper_fr(&Proof::eval_b));
  EXPECT_FALSE(tamper_fr(&Proof::eval_c));
  EXPECT_FALSE(tamper_fr(&Proof::eval_s1));
  EXPECT_FALSE(tamper_fr(&Proof::eval_s2));
  EXPECT_FALSE(tamper_fr(&Proof::eval_z_omega));
}

TEST_F(PlonkFixture, ProofIsConstantSize) {
  CubicCircuit c(3);
  auto keys = preprocess(c.cs, srs());
  Drbg rng(6);
  auto proof = prove(keys->pk, c.cs, srs(), c.witness, rng);
  ASSERT_TRUE(proof.has_value());
  EXPECT_EQ(proof->to_bytes().size(), Proof::size_bytes());
  EXPECT_EQ(Proof::size_bytes(), 9u * 64u + 6u * 32u);
}

TEST_F(PlonkFixture, ProofsAreRandomized) {
  // zero-knowledge smoke: two proofs of the same statement differ.
  CubicCircuit c(3);
  auto keys = preprocess(c.cs, srs());
  Drbg rng1(7), rng2(8);
  auto p1 = prove(keys->pk, c.cs, srs(), c.witness, rng1);
  auto p2 = prove(keys->pk, c.cs, srs(), c.witness, rng2);
  ASSERT_TRUE(p1 && p2);
  EXPECT_NE(p1->to_bytes(), p2->to_bytes());
  EXPECT_TRUE(verify(keys->vk, {c.witness[4]}, *p1));
  EXPECT_TRUE(verify(keys->vk, {c.witness[4]}, *p2));
}

TEST_F(PlonkFixture, DifferentWitnessSamePublicBothVerify) {
  // The relation w^2 = x has two witnesses w and -w; both must prove.
  ConstraintSystem cs;
  const Var w = cs.add_variable();
  const Var x = cs.add_variable();
  cs.set_public(x);
  cs.add_gate({Fr::one(), Fr::zero(), Fr::zero(), -Fr::one(), Fr::zero(), w, w,
               x});
  auto keys = preprocess(cs, srs());
  ASSERT_TRUE(keys);
  Drbg rng(9);
  const Fr wv = Fr::from_u64(6);
  const Fr xv = wv * wv;
  auto p1 = prove(keys->pk, cs, srs(), {Fr::zero(), wv, xv}, rng);
  auto p2 = prove(keys->pk, cs, srs(), {Fr::zero(), -wv, xv}, rng);
  ASSERT_TRUE(p1 && p2);
  EXPECT_TRUE(verify(keys->vk, {xv}, *p1));
  EXPECT_TRUE(verify(keys->vk, {xv}, *p2));
}

TEST_F(PlonkFixture, SrsTooSmallFailsGracefully) {
  ConstraintSystem cs;
  const Var a = cs.add_variable();
  for (int i = 0; i < 3000; ++i) {
    cs.add_gate({Fr::zero(), Fr::one(), Fr::zero(), Fr::zero(), Fr::zero(), a,
                 0, 0});
  }
  // domain 4096 > srs 2048
  EXPECT_FALSE(preprocess(cs, srs()).has_value());
}

TEST_F(PlonkFixture, ManyPublicInputs) {
  ConstraintSystem cs;
  std::vector<Var> pubs;
  std::vector<Fr> wit{Fr::zero()};
  Fr sum = Fr::zero();
  for (int i = 0; i < 20; ++i) {
    const Var v = cs.add_variable();
    cs.set_public(v);
    pubs.push_back(v);
    wit.push_back(Fr::from_u64(static_cast<std::uint64_t>(i) * 3 + 1));
    sum += wit.back();
  }
  // sum constraint via chain
  Var acc = pubs[0];
  for (std::size_t i = 1; i < pubs.size(); ++i) {
    const Var nxt = cs.add_variable();
    cs.add_gate({Fr::zero(), Fr::one(), Fr::one(), -Fr::one(), Fr::zero(), acc,
                 pubs[i], nxt});
    wit.push_back(wit[acc] + wit[pubs[i]]);
    acc = nxt;
  }
  const Var total = cs.add_variable();
  cs.set_public(total);
  wit.push_back(sum);
  cs.add_gate({Fr::zero(), Fr::one(), -Fr::one(), Fr::zero(), Fr::zero(), acc,
               total, 0});

  auto keys = preprocess(cs, srs());
  ASSERT_TRUE(keys);
  Drbg rng(10);
  ASSERT_TRUE(cs.is_satisfied(wit));
  auto proof = prove(keys->pk, cs, srs(), wit, rng);
  ASSERT_TRUE(proof);
  std::vector<Fr> pub_vals = cs.extract_public_inputs(wit);
  EXPECT_EQ(pub_vals.size(), 21u);
  EXPECT_TRUE(verify(keys->vk, pub_vals, *proof));
  pub_vals[20] += Fr::one();
  EXPECT_FALSE(verify(keys->vk, pub_vals, *proof));
}

TEST(ConstraintSystem, SatisfiabilityChecks) {
  ConstraintSystem cs;
  const Var a = cs.add_variable();
  const Var b = cs.add_variable();
  cs.add_gate({Fr::one(), Fr::zero(), Fr::zero(), -Fr::one(), Fr::zero(), a, a,
               b});
  EXPECT_TRUE(cs.is_satisfied({Fr::zero(), Fr::from_u64(3), Fr::from_u64(9)}));
  EXPECT_FALSE(cs.is_satisfied({Fr::zero(), Fr::from_u64(3), Fr::from_u64(8)}));
  // nonzero zero-var rejected
  EXPECT_FALSE(cs.is_satisfied({Fr::one(), Fr::from_u64(3), Fr::from_u64(9)}));
  // short witness rejected
  EXPECT_FALSE(cs.is_satisfied({Fr::zero()}));
}

TEST(ConstraintSystem, DomainSizePadding) {
  ConstraintSystem cs;
  EXPECT_EQ(cs.domain_size(), 8u);
  const Var a = cs.add_variable();
  for (int i = 0; i < 9; ++i) {
    cs.add_gate({Fr::zero(), Fr::one(), Fr::zero(), Fr::zero(), Fr::zero(), a,
                 0, 0});
  }
  EXPECT_EQ(cs.domain_size(), 16u);
}

TEST(Transcript, DeterministicAndOrderSensitive) {
  Transcript t1("test");
  Transcript t2("test");
  t1.absorb_u64(5);
  t2.absorb_u64(5);
  EXPECT_EQ(t1.challenge("c"), t2.challenge("c"));
  Transcript t3("test");
  t3.absorb_u64(6);
  EXPECT_NE(t1.challenge("d"), t3.challenge("d"));
}

TEST(Transcript, LabelSeparation) {
  Transcript t1("test");
  Transcript t2("test");
  EXPECT_NE(t1.challenge("alpha"), t2.challenge("beta"));
}

TEST(Srs, CommitmentIsHomomorphic) {
  Drbg rng(11);
  const Srs srs = Srs::setup(16, rng);
  const ff::Polynomial p{{Fr::from_u64(1), Fr::from_u64(2)}};
  const ff::Polynomial q{{Fr::from_u64(5), Fr::zero(), Fr::from_u64(3)}};
  EXPECT_EQ(srs.commit(p + q), srs.commit(p) + srs.commit(q));
}

TEST(Srs, EmptySrsHasZeroMaxDegree) {
  // Regression: max_degree() on a default-constructed Srs used to
  // compute g1_powers.size() - 1 == 2^64 - 1 (unsigned underflow),
  // making every "does the circuit fit" check pass vacuously.
  const Srs empty;
  EXPECT_EQ(empty.max_degree(), 0u);
}

TEST(Srs, PreprocessRejectsEmptySrs) {
  // Pre-fix, the underflowed max_degree() let preprocess proceed and
  // index past the end of the empty power table.
  CubicCircuit c(3);
  const Srs empty;
  EXPECT_FALSE(preprocess(c.cs, empty).has_value());
}

TEST(Srs, CommitEmptyPolynomialIsIdentity) {
  // Regression: commit() formatted coeffs.size() - 1 into its degree
  // check for empty input (underflow again); the zero polynomial must
  // commit to the identity instead.
  Drbg rng(13);
  const Srs srs = Srs::setup(8, rng);
  EXPECT_EQ(srs.commit(std::span<const Fr>{}), ec::G1::identity());
  EXPECT_EQ(srs.commit(ff::Polynomial{}), srs.commit(std::span<const Fr>{}));
}

TEST(Srs, AffinePowersMatchJacobian) {
  Drbg rng(14);
  const Srs srs = Srs::setup(8, rng);
  const auto affine = srs.g1_powers_affine();
  ASSERT_EQ(affine.size(), srs.g1_powers.size());
  for (std::size_t i = 0; i < affine.size(); ++i) {
    EXPECT_EQ(affine[i].to_jacobian(), srs.g1_powers[i]) << i;
  }
  // Copies share the lazily built cache (shared_ptr member).
  const Srs copy = srs;
  EXPECT_EQ(copy.g1_powers_affine().size(), affine.size());
}

TEST(Srs, PowersConsistent) {
  Drbg rng(12);
  const Srs srs = Srs::setup(8, rng);
  EXPECT_EQ(srs.g1_powers.size(), 9u);
  EXPECT_EQ(srs.g1_powers[0], ec::G1::generator());
  // e(tau^i G, H) == e(tau^(i-1) G, tau H)
  for (int i = 1; i < 4; ++i) {
    EXPECT_TRUE(ec::pairing_product_is_one(
        srs.g1_powers[static_cast<std::size_t>(i)], srs.g2_gen,
        -srs.g1_powers[static_cast<std::size_t>(i - 1)], srs.g2_tau));
  }
}

}  // namespace
}  // namespace zkdet::plonk
