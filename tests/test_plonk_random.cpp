// Property tests: randomly generated circuits must roundtrip through
// both proof systems, and every mutation class must be rejected.
#include <gtest/gtest.h>

#include <random>

#include "gadgets/builder.hpp"
#include "plonk/groth16.hpp"
#include "plonk/plonk.hpp"

namespace zkdet::plonk {
namespace {

using crypto::Drbg;
using ff::Fr;
using gadgets::CircuitBuilder;
using gadgets::Wire;

// Builds a random arithmetic circuit: a pool of wires grown by randomly
// chosen operations, with a random subset of intermediate values
// exposed as public inputs.
CircuitBuilder random_circuit(std::uint64_t seed, std::size_t ops) {
  std::mt19937_64 rng(seed);
  CircuitBuilder bld;
  std::vector<Wire> pool;
  for (int i = 0; i < 4; ++i) {
    pool.push_back(bld.add_witness(Fr::from_u64(rng() % 1000)));
  }
  for (std::size_t i = 0; i < ops; ++i) {
    const Wire a = pool[rng() % pool.size()];
    const Wire b = pool[rng() % pool.size()];
    switch (rng() % 5) {
      case 0: pool.push_back(bld.add(a, b)); break;
      case 1: pool.push_back(bld.sub(a, b)); break;
      case 2: pool.push_back(bld.mul(a, b)); break;
      case 3: pool.push_back(bld.scale(a, Fr::from_u64(rng() % 97 + 1))); break;
      case 4: pool.push_back(bld.add_constant(a, Fr::from_u64(rng() % 97))); break;
    }
    if (rng() % 7 == 0) {
      // expose this intermediate value publicly
      const Wire pub = bld.add_public_input(bld.value(pool.back()));
      bld.assert_equal(pub, pool.back());
    }
  }
  // always expose the final value
  const Wire out = bld.add_public_input(bld.value(pool.back()));
  bld.assert_equal(out, pool.back());
  return bld;
}

class RandomCircuitSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCircuitSweep, PlonkRoundtripAndTamper) {
  Drbg rng(GetParam());
  const CircuitBuilder bld = random_circuit(GetParam(), 40);
  ASSERT_TRUE(bld.witness_consistent());
  const Srs srs = Srs::setup(bld.cs().domain_size() + 16, rng);
  const auto keys = preprocess(bld.cs(), srs);
  ASSERT_TRUE(keys);
  const auto proof = prove(keys->pk, bld.cs(), srs, bld.witness(), rng);
  ASSERT_TRUE(proof);
  std::vector<Fr> pubs = bld.cs().extract_public_inputs(bld.witness());
  EXPECT_TRUE(verify(keys->vk, pubs, *proof));
  // mutate each public input in turn
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    std::vector<Fr> bad = pubs;
    bad[i] += Fr::one();
    EXPECT_FALSE(verify(keys->vk, bad, *proof)) << "public input " << i;
  }
}

TEST_P(RandomCircuitSweep, Groth16RoundtripAndTamper) {
  Drbg rng(GetParam() + 1000);
  const CircuitBuilder bld = random_circuit(GetParam() + 1000, 30);
  ASSERT_TRUE(bld.witness_consistent());
  const auto keys = groth16::setup(bld.cs(), rng);
  ASSERT_TRUE(keys);
  const auto proof = groth16::prove(keys->pk, bld.cs(), bld.witness(), rng);
  ASSERT_TRUE(proof);
  std::vector<Fr> pubs = bld.cs().extract_public_inputs(bld.witness());
  EXPECT_TRUE(groth16::verify(keys->vk, pubs, *proof));
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    std::vector<Fr> bad = pubs;
    bad[i] += Fr::one();
    EXPECT_FALSE(groth16::verify(keys->vk, bad, *proof)) << "public " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(PlonkEdgeCases, NoPublicInputs) {
  // A circuit with zero public inputs verifies against an empty vector.
  Drbg rng(1);
  CircuitBuilder bld;
  const Wire a = bld.add_witness(Fr::from_u64(6));
  const Wire b = bld.add_witness(Fr::from_u64(7));
  const Wire c = bld.mul(a, b);
  bld.assert_constant(c, Fr::from_u64(42));
  const Srs srs = Srs::setup(bld.cs().domain_size() + 16, rng);
  const auto keys = preprocess(bld.cs(), srs);
  ASSERT_TRUE(keys);
  const auto proof = prove(keys->pk, bld.cs(), srs, bld.witness(), rng);
  ASSERT_TRUE(proof);
  EXPECT_TRUE(verify(keys->vk, {}, *proof));
  EXPECT_FALSE(verify(keys->vk, {Fr::one()}, *proof));
}

TEST(PlonkEdgeCases, SingleGateCircuit) {
  Drbg rng(2);
  ConstraintSystem cs;
  const Var a = cs.add_variable();
  cs.set_public(a);
  cs.add_gate({Fr::zero(), Fr::one(), Fr::zero(), Fr::zero(), -Fr::from_u64(9),
               a, 0, 0});
  const Srs srs = Srs::setup(cs.domain_size() + 16, rng);
  const auto keys = preprocess(cs, srs);
  ASSERT_TRUE(keys);
  const auto proof = prove(keys->pk, cs, srs, {Fr::zero(), Fr::from_u64(9)},
                           rng);
  ASSERT_TRUE(proof);
  EXPECT_TRUE(verify(keys->vk, {Fr::from_u64(9)}, *proof));
}

TEST(PlonkEdgeCases, ProofSerializationRoundtrip) {
  Drbg rng(4);
  const CircuitBuilder bld = random_circuit(789, 25);
  const Srs srs = Srs::setup(bld.cs().domain_size() + 16, rng);
  const auto keys = preprocess(bld.cs(), srs);
  ASSERT_TRUE(keys);
  const auto proof = prove(keys->pk, bld.cs(), srs, bld.witness(), rng);
  ASSERT_TRUE(proof);
  const auto bytes = proof->to_bytes();
  const auto back = Proof::from_bytes(bytes);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->to_bytes(), bytes);
  const std::vector<Fr> pubs = bld.cs().extract_public_inputs(bld.witness());
  EXPECT_TRUE(verify(keys->vk, pubs, *back));
  // malformed encodings rejected
  EXPECT_FALSE(Proof::from_bytes({bytes.data(), bytes.size() - 1}));
  auto corrupt = bytes;
  corrupt[3] ^= 0xFF;  // breaks the first point's x coordinate
  EXPECT_FALSE(Proof::from_bytes(corrupt).has_value());
  auto bad_fr = bytes;
  std::fill(bad_fr.end() - 32, bad_fr.end(), 0xFF);  // non-canonical Fr
  EXPECT_FALSE(Proof::from_bytes(bad_fr).has_value());
}

TEST(PlonkEdgeCases, PointSerializationRejectsOffCurve) {
  std::vector<std::uint8_t> junk(64, 0x01);
  EXPECT_FALSE(ec::g1_from_bytes(junk).has_value());
  const auto id = ec::g1_from_bytes(std::vector<std::uint8_t>(64, 0));
  ASSERT_TRUE(id);
  EXPECT_TRUE(id->is_identity());
  const auto gen = ec::g1_from_bytes(ec::g1_to_bytes(ec::G1::generator()));
  ASSERT_TRUE(gen);
  EXPECT_EQ(*gen, ec::G1::generator());
  const auto gen2 = ec::g2_from_bytes(ec::g2_to_bytes(ec::G2::generator()));
  ASSERT_TRUE(gen2);
  EXPECT_EQ(*gen2, ec::G2::generator());
}

TEST(PlonkEdgeCases, ProofForOneCircuitRejectsAnotherVk) {
  Drbg rng(3);
  const CircuitBuilder bld1 = random_circuit(123, 20);
  const CircuitBuilder bld2 = random_circuit(456, 20);
  const Srs srs = Srs::setup(
      std::max(bld1.cs().domain_size(), bld2.cs().domain_size()) + 16, rng);
  const auto k1 = preprocess(bld1.cs(), srs);
  const auto k2 = preprocess(bld2.cs(), srs);
  ASSERT_TRUE(k1 && k2);
  const auto proof = prove(k1->pk, bld1.cs(), srs, bld1.witness(), rng);
  ASSERT_TRUE(proof);
  // verifying against the wrong circuit's keys must fail even with the
  // right-arity public input vector
  std::vector<Fr> pubs2(bld2.cs().public_vars().size(), Fr::one());
  EXPECT_FALSE(verify(k2->vk, pubs2, *proof));
}

}  // namespace
}  // namespace zkdet::plonk
