// Integration tests: transformation protocol + key-secure exchange +
// ZKCP baseline, end-to-end through chain, storage and proofs.
#include <gtest/gtest.h>

#include "core/exchange.hpp"

namespace zkdet::core {
namespace {

using chain::Formula;
using crypto::Drbg;
using crypto::KeyPair;
using ff::Fr;

struct ProtocolFixture : ::testing::Test {
  // The system (SRS, contracts, preprocessed shapes) is expensive;
  // share one across every test in this binary.
  static ZkdetSystem& sys() {
    static ZkdetSystem s(1 << 14, 13);
    return s;
  }
  static TransformationProtocol& tp() {
    static TransformationProtocol t(sys());
    return t;
  }

  Drbg rng{77};
  KeyPair alice = KeyPair::generate(rng);
  KeyPair bob = KeyPair::generate(rng);
  KeyPair carol = KeyPair::generate(rng);

  void SetUp() override {
    sys().chain().create_account(alice, 100000);
    sys().chain().create_account(bob, 100000);
    sys().chain().create_account(carol, 100000);
  }

  std::vector<Fr> make_data(std::size_t n, std::uint64_t base = 100) {
    std::vector<Fr> d;
    for (std::size_t i = 0; i < n; ++i) d.push_back(Fr::from_u64(base + i));
    return d;
  }
};

TEST_F(ProtocolFixture, PublishMintsVerifiableToken) {
  auto asset = tp().publish(alice, make_data(4));
  ASSERT_TRUE(asset.has_value());
  EXPECT_NE(asset->token_id, 0u);
  const auto info = sys().nft().token(asset->token_id);
  ASSERT_TRUE(info);
  EXPECT_EQ(info->owner, crypto::address_of(alice.pk));
  EXPECT_EQ(info->formula, Formula::kGenesis);
  EXPECT_EQ(info->data_commitment,
            commit_dataset(asset->plain, asset->data_blinder));
  // anyone can validate the encryption proof
  EXPECT_TRUE(tp().verify_encryption(asset->token_id));
  EXPECT_TRUE(tp().verify_provenance_chain(asset->token_id));
}

TEST_F(ProtocolFixture, PublishedCiphertextIsStoredAndDecryptable) {
  auto asset = tp().publish(alice, make_data(4, 500));
  ASSERT_TRUE(asset);
  const auto* rec = tp().encryption_record(asset->token_id);
  ASSERT_NE(rec, nullptr);
  const auto blob = sys().storage().get(rec->data_cid);
  ASSERT_TRUE(blob);
  const auto ct = storage::blob_to_dataset(*blob);
  ASSERT_TRUE(ct);
  // the owner can decrypt their own upload
  EXPECT_EQ(crypto::mimc_ctr_decrypt(asset->key, asset->nonce, *ct),
            asset->plain);
  // ciphertext is not the plaintext
  EXPECT_NE(*ct, asset->plain);
}

TEST_F(ProtocolFixture, DuplicationProvenance) {
  auto src = tp().publish(alice, make_data(4, 200));
  ASSERT_TRUE(src);
  auto dup = tp().duplicate(alice, *src);
  ASSERT_TRUE(dup);
  EXPECT_EQ(dup->plain, src->plain);
  const auto info = sys().nft().token(dup->token_id);
  EXPECT_EQ(info->formula, Formula::kDuplication);
  EXPECT_EQ(info->prev_ids, std::vector<std::uint64_t>{src->token_id});
  EXPECT_TRUE(tp().verify_transformation(dup->token_id));
  EXPECT_TRUE(tp().verify_provenance_chain(dup->token_id));
  // different key + blinder: commitments differ although data equal
  EXPECT_NE(info->data_commitment,
            sys().nft().token(src->token_id)->data_commitment);
}

TEST_F(ProtocolFixture, AggregationProvenance) {
  auto a = tp().publish(alice, make_data(2, 300));
  auto b = tp().publish(alice, make_data(3, 400));
  ASSERT_TRUE(a && b);
  const std::vector<OwnedAsset> srcs{*a, *b};
  auto agg = tp().aggregate(alice, srcs);
  ASSERT_TRUE(agg);
  EXPECT_EQ(agg->plain.size(), 5u);
  EXPECT_EQ(agg->plain[0], a->plain[0]);
  EXPECT_EQ(agg->plain[2], b->plain[0]);
  const auto info = sys().nft().token(agg->token_id);
  EXPECT_EQ(info->formula, Formula::kAggregation);
  EXPECT_EQ(info->prev_ids,
            (std::vector<std::uint64_t>{a->token_id, b->token_id}));
  EXPECT_TRUE(tp().verify_provenance_chain(agg->token_id));
}

TEST_F(ProtocolFixture, PartitionProvenance) {
  auto src = tp().publish(alice, make_data(4, 600));
  ASSERT_TRUE(src);
  auto parts = tp().partition(alice, *src, {1, 3});
  ASSERT_TRUE(parts);
  ASSERT_EQ(parts->size(), 2u);
  EXPECT_EQ((*parts)[0].plain, std::vector<Fr>{src->plain[0]});
  EXPECT_EQ((*parts)[1].plain,
            (std::vector<Fr>{src->plain[1], src->plain[2], src->plain[3]}));
  for (const auto& p : *parts) {
    EXPECT_TRUE(tp().verify_transformation(p.token_id));
    EXPECT_TRUE(tp().verify_provenance_chain(p.token_id));
  }
}

TEST_F(ProtocolFixture, PartitionRejectsBadSizes) {
  auto src = tp().publish(alice, make_data(4, 700));
  ASSERT_TRUE(src);
  EXPECT_FALSE(tp().partition(alice, *src, {1, 2}).has_value());   // not exhaustive
  EXPECT_FALSE(tp().partition(alice, *src, {0, 4}).has_value());   // empty part
  EXPECT_FALSE(tp().partition(alice, *src, {5}).has_value());      // too big
}

TEST_F(ProtocolFixture, ProcessingProvenance) {
  auto src = tp().publish(alice, make_data(3, 800));
  ASSERT_TRUE(src);
  const TransformGadget sum_gadget =
      [](gadgets::CircuitBuilder& bld,
         std::span<const gadgets::Wire> s) -> std::vector<gadgets::Wire> {
    gadgets::Wire acc = bld.zero();
    for (const auto w : s) acc = bld.add(acc, w);
    return {acc};
  };
  auto derived = tp().process(alice, *src, sum_gadget, "sum");
  ASSERT_TRUE(derived);
  ASSERT_EQ(derived->plain.size(), 1u);
  Fr expect = Fr::zero();
  for (const Fr& x : src->plain) expect += x;
  EXPECT_EQ(derived->plain[0], expect);
  EXPECT_TRUE(tp().verify_provenance_chain(derived->token_id));
}

TEST_F(ProtocolFixture, MultiHopProvenanceChain) {
  // genesis -> duplicate -> partition -> aggregate: the whole DAG checks.
  auto g = tp().publish(alice, make_data(4, 900));
  ASSERT_TRUE(g);
  auto d = tp().duplicate(alice, *g);
  ASSERT_TRUE(d);
  auto parts = tp().partition(alice, *d, {2, 2});
  ASSERT_TRUE(parts);
  const std::vector<OwnedAsset> srcs{(*parts)[0], (*parts)[1]};
  auto agg = tp().aggregate(alice, srcs);
  ASSERT_TRUE(agg);
  EXPECT_TRUE(tp().verify_provenance_chain(agg->token_id));
  const auto ancestors = sys().nft().provenance(agg->token_id);
  EXPECT_EQ(ancestors.size(), 4u);  // g, d, two parts
}

TEST_F(ProtocolFixture, CannotTransformForeignAsset) {
  auto src = tp().publish(alice, make_data(3, 1000));
  ASSERT_TRUE(src);
  // Bob holds Alice's secrets (stolen) but does not own the token:
  // the chain rejects the derived mint.
  EXPECT_FALSE(tp().duplicate(bob, *src).has_value());
}

TEST_F(ProtocolFixture, ProofsArePublicInStorage) {
  // The proof chain is public: any participant can fetch a serialized
  // pi_e from the storage network by its CID, parse it, and verify it
  // against a statement rebuilt purely from chain + storage state.
  auto asset = tp().publish(alice, make_data(4, 3000));
  ASSERT_TRUE(asset);
  const auto* rec = tp().encryption_record(asset->token_id);
  ASSERT_NE(rec, nullptr);
  const auto blob = sys().storage().get(rec->proof_cid);
  ASSERT_TRUE(blob);
  const auto proof = plonk::Proof::from_bytes(*blob);
  ASSERT_TRUE(proof);

  const auto info = sys().nft().token(asset->token_id);
  const auto ct_blob = sys().storage().get(rec->data_cid);
  const auto ct = storage::blob_to_dataset(*ct_blob);
  std::vector<Fr> publics{rec->nonce, info->data_commitment};
  publics.insert(publics.end(), ct->begin(), ct->end());
  const auto* keys = sys().find_keys(rec->shape_id);
  ASSERT_NE(keys, nullptr);
  EXPECT_TRUE(plonk::verify(keys->vk, publics, *proof));
}

TEST_F(ProtocolFixture, StorageTamperBreaksVerification) {
  auto asset = tp().publish(alice, make_data(4, 1100));
  ASSERT_TRUE(asset);
  const auto* rec = tp().encryption_record(asset->token_id);
  ASSERT_NE(rec, nullptr);
  // corrupt every replica of the ciphertext
  for (std::size_t i = 0; i < sys().storage().num_nodes(); ++i) {
    sys().storage().node(i).corrupt(rec->data_cid);
  }
  EXPECT_FALSE(tp().verify_encryption(asset->token_id));
  EXPECT_FALSE(tp().verify_provenance_chain(asset->token_id));
}

TEST_F(ProtocolFixture, UnpublishedTokenFailsVerification) {
  EXPECT_FALSE(tp().verify_encryption(999999));
  EXPECT_FALSE(tp().verify_provenance_chain(999999));
}

// --- key-secure exchange ---

struct ExchangeFixture : ProtocolFixture {
  KeySecureExchange ex{sys(), tp()};
  ZkcpExchange zkcp{sys(), tp()};
};

TEST_F(ExchangeFixture, FullHonestExchange) {
  auto asset = tp().publish(alice, make_data(4, 1200));
  ASSERT_TRUE(asset);
  auto offer = ex.make_offer(*asset, nullptr, "any");
  ASSERT_TRUE(offer);
  EXPECT_TRUE(ex.verify_offer(*offer));

  const std::uint64_t alice_before =
      sys().chain().balance(crypto::address_of(alice.pk));
  auto session = ex.lock_payment(bob, *offer, 750, 100);
  ASSERT_TRUE(session);
  // seller receives k_v off-chain and settles
  EXPECT_TRUE(ex.settle(alice, *asset, session->exchange_id, session->k_v));
  EXPECT_EQ(sys().chain().balance(crypto::address_of(alice.pk)),
            alice_before + 750);
  // buyer recovers the plaintext
  auto data = ex.recover_data(*session);
  ASSERT_TRUE(data);
  EXPECT_EQ(*data, asset->plain);
}

TEST_F(ExchangeFixture, KeyNeverAppearsOnChain) {
  auto asset = tp().publish(alice, make_data(4, 1300));
  ASSERT_TRUE(asset);
  auto offer = ex.make_offer(*asset, nullptr, "any");
  auto session = ex.lock_payment(bob, *offer, 500, 100);
  ASSERT_TRUE(session);
  ASSERT_TRUE(ex.settle(alice, *asset, session->exchange_id, session->k_v));
  // on-chain record holds only k_c = k + k_v, not k
  const auto info = sys().arbiter().exchange(session->exchange_id);
  ASSERT_TRUE(info);
  EXPECT_NE(info->k_c, asset->key);
  // a third party with chain access but no k_v cannot decrypt
  const auto* rec = tp().encryption_record(asset->token_id);
  const auto blob = sys().storage().get(rec->data_cid);
  const auto ct = storage::blob_to_dataset(*blob);
  const auto eve_guess =
      crypto::mimc_ctr_decrypt(info->k_c, rec->nonce, *ct);  // wrong key
  EXPECT_NE(eve_guess, asset->plain);
}

TEST_F(ExchangeFixture, PredicateOfferVerifies) {
  // sell a dataset claimed to contain only small values
  auto asset = tp().publish(alice, make_data(4, 50));
  ASSERT_TRUE(asset);
  const Predicate small = [](gadgets::CircuitBuilder& bld,
                             std::span<const gadgets::Wire> data) {
    for (const auto w : data) bld.assert_range(w, 16);
  };
  auto offer = ex.make_offer(*asset, small, "u16");
  ASSERT_TRUE(offer);
  EXPECT_TRUE(ex.verify_offer(*offer));
}

TEST_F(ExchangeFixture, FalsePredicateCannotBeOffered) {
  std::vector<Fr> big{Fr::from_u64(1) + Fr::from_u64(1u << 20),
                      Fr::from_u64(2), Fr::from_u64(3), Fr::from_u64(4)};
  auto asset = tp().publish(alice, big);
  ASSERT_TRUE(asset);
  const Predicate small = [](gadgets::CircuitBuilder& bld,
                             std::span<const gadgets::Wire> data) {
    for (const auto w : data) bld.assert_range(w, 16);
  };
  EXPECT_FALSE(ex.make_offer(*asset, small, "u16").has_value());
}

TEST_F(ExchangeFixture, OfferForTamperedStorageRejected) {
  auto asset = tp().publish(alice, make_data(4, 1400));
  ASSERT_TRUE(asset);
  auto offer = ex.make_offer(*asset, nullptr, "any");
  ASSERT_TRUE(offer);
  const auto* rec = tp().encryption_record(asset->token_id);
  for (std::size_t i = 0; i < sys().storage().num_nodes(); ++i) {
    sys().storage().node(i).corrupt(rec->data_cid);
  }
  EXPECT_FALSE(ex.verify_offer(*offer));
}

TEST_F(ExchangeFixture, SellerAbortsOnForgedKv) {
  auto asset = tp().publish(alice, make_data(4, 1500));
  ASSERT_TRUE(asset);
  auto offer = ex.make_offer(*asset, nullptr, "any");
  auto session = ex.lock_payment(bob, *offer, 400, 100);
  ASSERT_TRUE(session);
  // buyer sends a k_v that does not hash to the locked h_v
  EXPECT_FALSE(ex.settle(alice, *asset, session->exchange_id,
                         session->k_v + Fr::one()));
  // and can reclaim the escrow after the deadline
  sys().chain().advance_blocks(101);
  EXPECT_TRUE(ex.refund(bob, session->exchange_id));
}

TEST_F(ExchangeFixture, SettleRequiresMatchingAsset) {
  auto asset1 = tp().publish(alice, make_data(4, 1600));
  auto asset2 = tp().publish(alice, make_data(4, 1700));
  ASSERT_TRUE(asset1 && asset2);
  auto offer = ex.make_offer(*asset1, nullptr, "any");
  auto session = ex.lock_payment(bob, *offer, 400, 100);
  ASSERT_TRUE(session);
  // settling with the wrong asset's key fails (commitment mismatch)
  EXPECT_FALSE(ex.settle(alice, *asset2, session->exchange_id, session->k_v));
  // the right asset still settles
  EXPECT_TRUE(ex.settle(alice, *asset1, session->exchange_id, session->k_v));
}

TEST_F(ExchangeFixture, RecoverBeforeSettleFails) {
  auto asset = tp().publish(alice, make_data(4, 1800));
  ASSERT_TRUE(asset);
  auto offer = ex.make_offer(*asset, nullptr, "any");
  auto session = ex.lock_payment(bob, *offer, 400, 100);
  ASSERT_TRUE(session);
  EXPECT_FALSE(ex.recover_data(*session).has_value());
}

TEST_F(ExchangeFixture, ZkcpLeaksToEavesdropper) {
  // The baseline completes the trade but any third party (carol) can
  // then decrypt the public ciphertext — the paper's motivating flaw.
  auto asset = tp().publish(alice, make_data(4, 1900));
  ASSERT_TRUE(asset);
  auto offer = zkcp.make_offer(*asset, nullptr, "any");
  ASSERT_TRUE(offer);
  EXPECT_TRUE(zkcp.verify_offer(*offer));
  auto xid = zkcp.lock_payment(bob, *offer, 350);
  ASSERT_TRUE(xid);
  EXPECT_TRUE(zkcp.open(alice, *asset, *xid));
  // carol never took part in the exchange:
  const auto stolen = zkcp.eavesdrop(*xid, asset->token_id);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(*stolen, asset->plain);
}

TEST_F(ExchangeFixture, KeyPurchaseAfterTokenTransfer) {
  // The token can change hands (sale/auction) before the key exchange:
  // the escrow then names the key holder explicitly.
  auto asset = tp().publish(alice, make_data(4, 2050));
  ASSERT_TRUE(asset);
  const auto alice_addr = crypto::address_of(alice.pk);
  const auto bob_addr = crypto::address_of(bob.pk);
  const auto r = sys().chain().call(alice, "xfer", [&](chain::CallContext& ctx) {
    sys().nft().transfer_from(ctx, alice_addr, bob_addr, asset->token_id);
  });
  ASSERT_TRUE(r.success) << r.error;

  auto offer = ex.make_offer(*asset, nullptr, "any");
  ASSERT_TRUE(offer);
  const std::uint64_t alice_before = sys().chain().balance(alice_addr);
  auto session = ex.lock_payment(bob, *offer, 600, 100, alice_addr);
  ASSERT_TRUE(session);
  EXPECT_TRUE(ex.settle(alice, *asset, session->exchange_id, session->k_v));
  EXPECT_EQ(sys().chain().balance(alice_addr), alice_before + 600);
  auto data = ex.recover_data(*session);
  ASSERT_TRUE(data);
  EXPECT_EQ(*data, asset->plain);
}

TEST_F(ExchangeFixture, SampleDisclosureVerifies) {
  auto asset = tp().publish(alice, make_data(4, 2100));
  ASSERT_TRUE(asset);
  auto sample = ex.disclose_sample(*asset, 2);
  ASSERT_TRUE(sample);
  EXPECT_EQ(sample->value, asset->plain[2]);
  EXPECT_TRUE(ex.verify_sample(*sample));
  // out-of-range index refused
  EXPECT_FALSE(ex.disclose_sample(*asset, 99).has_value());
}

TEST_F(ExchangeFixture, SampleDisclosureCannotLie) {
  auto asset = tp().publish(alice, make_data(4, 2200));
  ASSERT_TRUE(asset);
  auto sample = ex.disclose_sample(*asset, 1);
  ASSERT_TRUE(sample);
  // claiming a different value for the entry fails against c_d
  sample->value += Fr::one();
  EXPECT_FALSE(ex.verify_sample(*sample));
  // and a proof for one token cannot be replayed for another
  auto other = tp().publish(alice, make_data(4, 2300));
  ASSERT_TRUE(other);
  auto sample2 = ex.disclose_sample(*asset, 1);
  ASSERT_TRUE(sample2);
  sample2->token_id = other->token_id;
  EXPECT_FALSE(ex.verify_sample(*sample2));
}

TEST_F(ExchangeFixture, SettleBatchSettlesEachExactlyOnce) {
  // Two sellers settle two exchanges in one settle_batch call: both
  // ride the batched claim path, both succeed, both buyers recover
  // their data — and a replayed batch is rejected wholesale.
  auto asset_a = tp().publish(alice, make_data(4, 3100));
  auto asset_c = tp().publish(carol, make_data(4, 3200));
  ASSERT_TRUE(asset_a);
  ASSERT_TRUE(asset_c);
  auto offer_a = ex.make_offer(*asset_a, nullptr, "any");
  auto offer_c = ex.make_offer(*asset_c, nullptr, "any");
  ASSERT_TRUE(offer_a);
  ASSERT_TRUE(offer_c);
  auto session_a = ex.lock_payment(bob, *offer_a, 310, 100);
  auto session_c = ex.lock_payment(bob, *offer_c, 320, 100);
  ASSERT_TRUE(session_a);
  ASSERT_TRUE(session_c);

  const auto alice_addr = crypto::address_of(alice.pk);
  const auto carol_addr = crypto::address_of(carol.pk);
  const std::uint64_t alice_before = sys().chain().balance(alice_addr);
  const std::uint64_t carol_before = sys().chain().balance(carol_addr);

  const KeySecureExchange::SettleRequest reqs[] = {
      {&alice, &*asset_a, session_a->exchange_id, session_a->k_v},
      {&carol, &*asset_c, session_c->exchange_id, session_c->k_v},
  };
  const auto ok = ex.settle_batch(reqs);
  ASSERT_EQ(ok.size(), 2u);
  EXPECT_TRUE(ok[0]);
  EXPECT_TRUE(ok[1]);
  EXPECT_EQ(sys().chain().balance(alice_addr), alice_before + 310);
  EXPECT_EQ(sys().chain().balance(carol_addr), carol_before + 320);
  auto data_a = ex.recover_data(*session_a);
  auto data_c = ex.recover_data(*session_c);
  ASSERT_TRUE(data_a);
  ASSERT_TRUE(data_c);
  EXPECT_EQ(*data_a, asset_a->plain);
  EXPECT_EQ(*data_c, asset_c->plain);

  // Exactly once: replaying the same batch settles nothing twice.
  const auto replay = ex.settle_batch(reqs);
  EXPECT_FALSE(replay[0]);
  EXPECT_FALSE(replay[1]);
  EXPECT_EQ(sys().chain().balance(alice_addr), alice_before + 310);
  EXPECT_EQ(sys().chain().balance(carol_addr), carol_before + 320);
}

TEST_F(ExchangeFixture, ZkcpOpenBatchRedeemsAll) {
  // ZKCP settlement has no pairing to fold (Poseidon preimage check):
  // open_batch batches for throughput, with the same leak per entry.
  auto asset1 = tp().publish(alice, make_data(4, 3300));
  auto asset2 = tp().publish(carol, make_data(4, 3400));
  ASSERT_TRUE(asset1);
  ASSERT_TRUE(asset2);
  auto offer1 = zkcp.make_offer(*asset1, nullptr, "any");
  auto offer2 = zkcp.make_offer(*asset2, nullptr, "any");
  ASSERT_TRUE(offer1);
  ASSERT_TRUE(offer2);
  auto xid1 = zkcp.lock_payment(bob, *offer1, 210);
  auto xid2 = zkcp.lock_payment(bob, *offer2, 220);
  ASSERT_TRUE(xid1);
  ASSERT_TRUE(xid2);

  const ZkcpExchange::OpenRequest reqs[] = {
      {&alice, &*asset1, *xid1},
      {&carol, &*asset2, *xid2},
  };
  const auto ok = zkcp.open_batch(reqs);
  ASSERT_EQ(ok.size(), 2u);
  EXPECT_TRUE(ok[0]);
  EXPECT_TRUE(ok[1]);
  // Both keys are now public chain state — the flaw, at batch scale.
  EXPECT_TRUE(zkcp.eavesdrop(*xid1, asset1->token_id).has_value());
  EXPECT_TRUE(zkcp.eavesdrop(*xid2, asset2->token_id).has_value());
  // Replays revert: each redemption is exactly-once.
  const auto replay = zkcp.open_batch(reqs);
  EXPECT_FALSE(replay[0]);
  EXPECT_FALSE(replay[1]);
}

TEST_F(ExchangeFixture, KeySecureResistsEavesdropper) {
  auto asset = tp().publish(alice, make_data(4, 2000));
  ASSERT_TRUE(asset);
  auto offer = ex.make_offer(*asset, nullptr, "any");
  auto session = ex.lock_payment(bob, *offer, 350, 100);
  ASSERT_TRUE(session);
  ASSERT_TRUE(ex.settle(alice, *asset, session->exchange_id, session->k_v));
  // carol tries the same eavesdropping: all she sees on-chain is k_c.
  const auto info = sys().arbiter().exchange(session->exchange_id);
  const auto* rec = tp().encryption_record(asset->token_id);
  const auto blob = sys().storage().get(rec->data_cid);
  const auto ct = storage::blob_to_dataset(*blob);
  EXPECT_NE(crypto::mimc_ctr_decrypt(info->k_c, rec->nonce, *ct),
            asset->plain);
}

}  // namespace
}  // namespace zkdet::core
