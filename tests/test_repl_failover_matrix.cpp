// Failover chaos matrix (PR 8 acceptance property): for EVERY
// replication fail-point and every hit position, kill the primary,
// promote the follower, resume the workload on the promoted chain —
// and the result must be byte-identical to an uninterrupted control
// run: same tip hash, same balances (funds conserved), every exchange
// terminated settled xor refunded. Divergence injection must always be
// detected fail-stop; a diverged follower must never promote.
//
// The workload exercises the exchange protocol end to end without
// Plonk proving (cheap enough to run ~50 cells): a KeySecureArbiter
// escrow that times out and refunds, a ZkcpArbiter escrow settled by
// revealing the key (Poseidon check only), plus transfers. Each op
// seals exactly one block, so the promoted chain's height tells the
// resume loop which ops are already durable — the same discipline the
// ledger crash matrix uses.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <numeric>
#include <optional>

#include "chain/arbiter.hpp"
#include "chain/chain.hpp"
#include "chain/verifier_contract.hpp"
#include "crypto/poseidon.hpp"
#include "crypto/rng.hpp"
#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/ledger.hpp"
#include "replication/replica_set.hpp"

namespace zkdet::replication {
namespace {

using chain::CallContext;
using crypto::Drbg;
using crypto::KeyPair;
using ff::Fr;

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("zkdet-repl-matrix-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1)));
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

constexpr std::size_t kOps = 10;
// Startup seals three blocks (verifier + arbiter + zkcp deploys) on top
// of genesis, so op i runs when the chain is at kStartupHeight + i.
constexpr std::uint64_t kStartupHeight = 4;
constexpr std::uint64_t kTotalFunds = 150'000;

// One "process": chain + ledger + deployed exchange contracts. The
// deterministic Drbg makes every incarnation (control, pre-kill,
// promoted) byte-compatible: same keys, same secrets, same op stream.
struct World {
  chain::Chain chain;
  std::optional<ledger::Ledger> ledger;  // after chain: detaches first
  KeyPair buyer_keys, seller_keys;
  chain::Address buyer, seller;
  chain::PlonkVerifierContract* verifier = nullptr;
  chain::KeySecureArbiter* arbiter = nullptr;
  chain::ZkcpArbiter* zkcp = nullptr;
  Fr h_v, key_cm, zkcp_key;

  World(const std::string& dir, const ledger::Options& opts) {
    Drbg rng("repl-matrix", 23);
    buyer_keys = KeyPair::generate(rng);
    seller_keys = KeyPair::generate(rng);
    h_v = rng.random_fr();
    key_cm = rng.random_fr();
    zkcp_key = rng.random_fr();
    ledger.emplace(chain, dir, opts);
    // Idempotent against restored state: known keys are no-op credits,
    // deploys adopt their persisted contracts.
    buyer = chain.create_account(buyer_keys, 100'000);
    seller = chain.create_account(seller_keys, 50'000);
    // A stub verifying key is fine: the key-secure exchange in this
    // workload terminates through the refund path, never settle().
    verifier = &chain.deploy<chain::PlonkVerifierContract>(
        buyer_keys, nullptr, plonk::VerifyingKey{}, "PlonkVerifier(stub)");
    arbiter = &chain.deploy<chain::KeySecureArbiter>(
        buyer_keys, nullptr, *verifier, /*first_id=*/1, /*stride=*/1);
    zkcp = &chain.deploy<chain::ZkcpArbiter>(buyer_keys, nullptr);
  }

  void run_op(std::size_t i) {
    const std::string tag = " op " + std::to_string(i);
    switch (i) {
      case 0:
        chain.call(
            buyer_keys, "ks-lock" + tag,
            [&](CallContext& ctx) {
              arbiter->lock(ctx, seller, h_v, key_cm, /*timeout_blocks=*/3);
            },
            300, arbiter->address());
        break;
      case 1:
        chain.call(
            buyer_keys, "pay" + tag, [](CallContext&) {}, 10, seller);
        break;
      case 2:
        chain.call(
            buyer_keys, "zkcp-lock" + tag,
            [&](CallContext& ctx) {
              zkcp->lock(ctx, seller,
                         crypto::poseidon_hash({zkcp_key}, 0x6b6579));
            },
            200, zkcp->address());
        break;
      case 3:
        chain.call(seller_keys, "zkcp-open" + tag, [&](CallContext& ctx) {
          zkcp->open(ctx, 1, zkcp_key);
        });
        break;
      case 4:
        chain.call(
            seller_keys, "pay-back" + tag, [](CallContext&) {}, 5, buyer);
        break;
      case 5:
      case 6:
      case 7:
        chain.advance_blocks(1);  // run out the key-secure deadline
        break;
      case 8:
        chain.call(buyer_keys, "ks-refund" + tag,
                   [&](CallContext& ctx) { arbiter->refund(ctx, 1); });
        break;
      default:
        chain.call(
            buyer_keys, "pay-final" + tag, [](CallContext&) {}, 7, seller);
        break;
    }
  }

  void run_remaining() {
    ASSERT_GE(chain.height(), kStartupHeight);
    for (std::size_t i = chain.height() - kStartupHeight; i < kOps; ++i) {
      run_op(i);
    }
  }
};

struct FinalState {
  std::array<std::uint8_t, 32> tip{};
  std::uint64_t height = 0;
  std::map<chain::Address, std::uint64_t> balances;
  chain::ExchangeState ks_state = chain::ExchangeState::kNone;
  chain::ExchangeState zkcp_state = chain::ExchangeState::kNone;
};

FinalState capture(World& w) {
  FinalState s;
  s.tip = w.chain.blocks().back().hash;
  s.height = w.chain.height();
  s.balances = w.chain.balances_map();
  if (const auto x = w.arbiter->exchange(1)) s.ks_state = x->state;
  if (const auto x = w.zkcp->exchange(1)) s.zkcp_state = x->state;
  return s;
}

void expect_final(const FinalState& got, const FinalState& want,
                  const std::string& what) {
  EXPECT_EQ(got.height, want.height) << what;
  EXPECT_EQ(got.tip, want.tip) << what << ": tip hash diverged";
  EXPECT_EQ(got.balances, want.balances) << what;
  // Every exchange terminated, settled xor refunded — and funds were
  // conserved across kill + promotion.
  EXPECT_EQ(got.ks_state, chain::ExchangeState::kRefunded) << what;
  EXPECT_EQ(got.zkcp_state, chain::ExchangeState::kSettled) << what;
  const std::uint64_t total = std::accumulate(
      got.balances.begin(), got.balances.end(), std::uint64_t{0},
      [](std::uint64_t acc, const auto& kv) { return acc + kv.second; });
  EXPECT_EQ(total, kTotalFunds) << what << ": funds not conserved";
}

ledger::Options matrix_options() {
  ledger::Options opts;
  opts.snapshot_interval = 4;  // snapshots + segment GC inside the script
  opts.verify_signatures = true;
  opts.fsync_each_append = true;
  return opts;
}

// The uninterrupted, replication-free run every cell must converge to.
FinalState control_state() {
  TempDir dir;
  World w(dir.str(), matrix_options());
  w.run_remaining();
  EXPECT_TRUE(w.chain.validate_chain());
  return capture(w);
}

struct MatrixCase {
  const char* point;
  std::uint64_t hit;
};

class FailoverMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(FailoverMatrix, KillPromoteResumeConverges) {
  const auto& [point, hit] = GetParam();
  static const FinalState control = control_state();

  TempDir dir;
  fault::inject(point, fault::Schedule::once(hit));
  std::string promoted_dir;
  bool diverged = false;
  {
    World w(dir.str() + "/primary", matrix_options());
    ReplicaSet reps(*w.ledger, w.chain, dir.str() + "/standby", 1);
    const auto pump_once = [&] {
      try {
        reps.pump();
      } catch (const ledger::CrashInjected&) {
        // Follower process death: restart it from its own directory.
        reps.restart_follower(0);
      }
    };
    // Natural lag: one pump per op, then drain to the watermark.
    for (std::size_t i = 0; i < kOps; ++i) {
      w.run_op(i);
      pump_once();
    }
    for (int round = 0; round < 2000 && !reps.shipper().all_caught_up();
         ++round) {
      pump_once();
    }
    // Extra rounds so a late fail-stop propagates both directions.
    pump_once();
    pump_once();

    diverged = reps.shipper().status(0).failed || reps.follower(0).failed();
    if (fault::failures(fault::points::kReplShipDiverge) > 0) {
      // Divergence injection must ALWAYS be detected — fail-stop, never
      // a silent fork...
      EXPECT_TRUE(diverged) << point << "@" << hit << ": silent fork";
    }
    if (diverged) {
      // ...and a diverged follower must never become the primary.
      EXPECT_THROW((void)reps.promote(0), ledger::IoError)
          << point << "@" << hit;
      fault::clear_all();
      return;
    }
    EXPECT_TRUE(reps.shipper().all_caught_up())
        << point << "@" << hit << ": follower never caught up ("
        << reps.shipper().status(0).diagnostic << ")";
    promoted_dir = reps.promote(0);
  }  // primary killed: every in-memory structure dropped
  fault::clear_all();

  // Failover: open a fresh primary on the promoted follower's directory
  // and let the client resume its script from the recovered height.
  World w(promoted_dir, matrix_options());
  EXPECT_TRUE(w.chain.validate_chain())
      << point << "@" << hit << ": promoted chain fails validation";
  w.run_remaining();
  EXPECT_TRUE(w.chain.validate_chain());
  expect_final(capture(w), control,
               std::string(point) + "@" + std::to_string(hit));
}

// ZKDET_REPL_MATRIX_HITS selects the kill positions: "a-b" ranges and
// single values, comma-separated (e.g. "1-10", "11-15", "3,7"). The
// in-suite default sweeps 1..10; scripts/ci.sh replays a disjoint
// higher slice so CI covers kill positions the suite did not.
std::vector<std::uint64_t> hit_positions() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at test start-up
  const char* env = std::getenv("ZKDET_REPL_MATRIX_HITS");
  const std::string spec = (env != nullptr && *env != '\0') ? env : "1-10";
  std::vector<std::uint64_t> hits;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    const std::size_t dash = tok.find('-');
    char* end = nullptr;
    const std::uint64_t lo = std::strtoull(tok.c_str(), &end, 10);
    const std::uint64_t hi =
        dash == std::string::npos
            ? lo
            : std::strtoull(tok.c_str() + dash + 1, &end, 10);
    for (std::uint64_t h = lo; h >= 1 && h <= hi && h <= 100; ++h) {
      hits.push_back(h);
    }
  }
  if (hits.empty()) {
    for (std::uint64_t h = 1; h <= 10; ++h) hits.push_back(h);
  }
  return hits;
}

std::vector<MatrixCase> all_cases() {
  std::vector<MatrixCase> cases;
  for (const char* point : fault::points::kReplAll) {
    for (const std::uint64_t hit : hit_positions()) {
      cases.push_back({point, hit});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllReplicationFailPoints, FailoverMatrix, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      std::string name = info.param.point;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name + "_hit" + std::to_string(info.param.hit);
    });

}  // namespace
}  // namespace zkdet::replication
