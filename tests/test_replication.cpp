// Replication unit tests: transport framing, backoff determinism,
// ledger read API (durable watermark, record reads, truncation),
// shipper/follower streaming, fault recovery, divergence fail-stop,
// and the follower read-path prefix-consistency property.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <optional>

#include "chain/arbiter.hpp"
#include "chain/chain.hpp"
#include "chain/verifier_contract.hpp"
#include "core/follower_view.hpp"
#include "crypto/rng.hpp"
#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "core/system.hpp"
#include "ledger/ledger.hpp"
#include "ledger/replay.hpp"
#include "ledger/wal.hpp"
#include "replication/replica_set.hpp"
#include "replication/socket_link.hpp"
#include "runtime/retry.hpp"
#include "runtime/stats.hpp"

namespace zkdet::replication {
namespace {

using chain::CallContext;
using crypto::Drbg;
using crypto::KeyPair;

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("zkdet-repl-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1)));
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

// --- transport framing ---

TEST(ReplTransport, FrameRoundTrip) {
  Frame f;
  f.type = FrameType::kRecord;
  f.seq = 42;
  f.height = 7;
  f.tip_hash.fill(0xab);
  f.text = "diag";
  f.bytes = {1, 2, 3, 4, 5};
  const auto wire = encode_frame(f);
  const auto back = decode_frame(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, FrameType::kRecord);
  EXPECT_EQ(back->seq, 42u);
  EXPECT_EQ(back->height, 7u);
  EXPECT_EQ(back->tip_hash, f.tip_hash);
  EXPECT_EQ(back->text, "diag");
  EXPECT_EQ(back->bytes, f.bytes);
}

TEST(ReplTransport, CorruptDatagramDecodesToNothing) {
  Frame f;
  f.type = FrameType::kAck;
  f.seq = 9;
  auto wire = encode_frame(f);
  // Flip one bit anywhere: the CRC must catch it.
  for (std::size_t i = 0; i < wire.size(); i += 3) {
    auto bad = wire;
    bad[i] ^= 0x10;
    EXPECT_FALSE(decode_frame(bad).has_value()) << "byte " << i;
  }
  // Truncation and trailing garbage are rejected too.
  auto trunc = wire;
  trunc.pop_back();
  EXPECT_FALSE(decode_frame(trunc).has_value());
  auto padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(decode_frame(padded).has_value());
}

TEST(ReplTransport, UnknownFrameTypeRejected) {
  Frame f;
  f.type = static_cast<FrameType>(9);
  EXPECT_FALSE(decode_frame(encode_frame(f)).has_value());
}

TEST(ReplTransport, InMemoryLinkIsFifoBothWays) {
  InMemoryLink link;
  link.send_to_follower({1});
  link.send_to_follower({2});
  link.send_to_primary({3});
  EXPECT_EQ(link.pending_to_follower(), 2u);
  EXPECT_EQ(*link.recv_at_follower(), std::vector<std::uint8_t>{1});
  EXPECT_EQ(*link.recv_at_follower(), std::vector<std::uint8_t>{2});
  EXPECT_FALSE(link.recv_at_follower().has_value());
  EXPECT_EQ(*link.recv_at_primary(), std::vector<std::uint8_t>{3});
  EXPECT_FALSE(link.recv_at_primary().has_value());
}

// --- retry/backoff helper (satellite: src/runtime/retry.hpp) ---

TEST(Backoff, BoundedAndDeterministic) {
  runtime::BackoffPolicy policy;
  policy.max_attempts = 4;
  policy.base_delay_us = 100;
  policy.max_delay_us = 250;
  policy.jitter = 0.5;
  policy.seed = 77;

  runtime::Backoff a(policy);
  runtime::Backoff b(policy);
  std::vector<std::uint64_t> da;
  std::vector<std::uint64_t> db;
  int grants = 0;
  while (a.next_attempt()) {
    ++grants;
    da.push_back(a.last_delay_us());
  }
  while (b.next_attempt()) db.push_back(b.last_delay_us());
  EXPECT_EQ(grants, 4);
  EXPECT_TRUE(a.exhausted());
  EXPECT_EQ(da, db) << "same policy+seed must give identical delays";
  EXPECT_EQ(da[0], 0u) << "first attempt is immediate";
  for (std::size_t i = 1; i < da.size(); ++i) {
    EXPECT_LE(da[i], policy.max_delay_us);
  }
  EXPECT_EQ(a.total_delay_us(), da[1] + da[2] + da[3]);

  a.reset();
  EXPECT_TRUE(a.next_attempt());
  EXPECT_EQ(a.attempts(), 1);
}

TEST(Backoff, DelayGrowsExponentiallyUpToCap) {
  runtime::BackoffPolicy policy;
  policy.max_attempts = 10;
  policy.base_delay_us = 100;
  policy.max_delay_us = 800;
  policy.jitter = 0.0;  // no jitter: exact doubling
  runtime::Backoff b(policy);
  std::vector<std::uint64_t> delays;
  while (b.next_attempt()) delays.push_back(b.last_delay_us());
  ASSERT_EQ(delays.size(), 10u);
  EXPECT_EQ(delays[1], 100u);
  EXPECT_EQ(delays[2], 200u);
  EXPECT_EQ(delays[3], 400u);
  EXPECT_EQ(delays[4], 800u);
  EXPECT_EQ(delays[9], 800u) << "capped at max_delay_us";
}

// --- ledger read API ---

struct LedgerFixture {
  chain::Chain chain;
  std::optional<ledger::Ledger> ledger;
  KeyPair alice, bob;
  chain::Address a, b;

  explicit LedgerFixture(const std::string& dir,
                         ledger::Options opts = good_opts()) {
    Drbg rng("repl-ledger", 3);
    alice = KeyPair::generate(rng);
    bob = KeyPair::generate(rng);
    ledger.emplace(chain, dir, opts);
    a = chain.create_account(alice, 10'000);
    b = chain.create_account(bob, 5'000);
  }

  static ledger::Options good_opts() {
    ledger::Options opts;
    opts.snapshot_interval = 0;  // only snapshot_now()
    return opts;
  }

  void seal(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      chain.call(
          alice, "t" + std::to_string(i), [](CallContext&) {}, 1, b);
    }
  }
};

TEST(DurableWatermark, TracksFsyncNotAppend) {
  TempDir dir;
  ledger::Options opts;
  opts.snapshot_interval = 0;
  opts.fsync_each_append = false;
  LedgerFixture fx(dir.str(), opts);
  const std::uint64_t setup_wal = fx.ledger->wal_seq();
  const std::uint64_t setup_durable = fx.ledger->durable_watermark();
  fx.seal(3);
  EXPECT_EQ(fx.ledger->wal_seq(), setup_wal + 3);
  EXPECT_EQ(fx.ledger->durable_watermark(), setup_durable)
      << "un-synced appends must not advance the durable watermark";
  fx.ledger->sync();
  EXPECT_EQ(fx.ledger->durable_watermark(), fx.ledger->wal_seq());
}

TEST(DurableWatermark, EqualsWalSeqWithPerAppendFsync) {
  TempDir dir;
  LedgerFixture fx(dir.str());
  fx.seal(2);
  EXPECT_EQ(fx.ledger->durable_watermark(), fx.ledger->wal_seq());
}

TEST(ReadRecordsAfter, BatchesInOrderWithCursorResume) {
  TempDir dir;
  LedgerFixture fx(dir.str());
  fx.seal(7);  // 2 account records + 7 block records
  const std::uint64_t durable = fx.ledger->durable_watermark();
  ASSERT_EQ(durable, 9u);

  ledger::Ledger::ReadCursor cursor;
  std::uint64_t next = 1;
  std::uint64_t pos = 0;
  while (pos < durable) {
    const auto batch = fx.ledger->read_records_after(pos, 4, &cursor);
    ASSERT_FALSE(batch.gap);
    ASSERT_FALSE(batch.records.empty());
    for (const auto& rec : batch.records) {
      EXPECT_EQ(rec.seq, next);
      ++next;
    }
    pos = batch.records.back().seq;
  }
  EXPECT_EQ(next, durable + 1);
  // Caught up: nothing more.
  const auto empty = fx.ledger->read_records_after(durable, 4, &cursor);
  EXPECT_FALSE(empty.gap);
  EXPECT_TRUE(empty.records.empty());
}

TEST(ReadRecordsAfter, NeverReadsPastDurableWatermark) {
  TempDir dir;
  ledger::Options opts;
  opts.snapshot_interval = 0;
  opts.fsync_each_append = false;
  LedgerFixture fx(dir.str(), opts);
  const std::uint64_t durable = fx.ledger->durable_watermark();
  fx.seal(3);  // appended but not fsynced
  const auto r = fx.ledger->read_records_after(durable, 100, nullptr);
  EXPECT_TRUE(r.records.empty())
      << "records beyond the durable watermark must not ship";
  fx.ledger->sync();
  const auto r2 = fx.ledger->read_records_after(durable, 100, nullptr);
  EXPECT_EQ(r2.records.size(), fx.ledger->durable_watermark() - durable);
}

TEST(ReadRecordsAfter, ReportsGapWhenSegmentsRotatedAway) {
  TempDir dir;
  LedgerFixture fx(dir.str());
  fx.seal(5);
  fx.ledger->snapshot_now();  // rotates + deletes the old segments
  const auto r = fx.ledger->read_records_after(1, 100, nullptr);
  EXPECT_TRUE(r.gap) << "pre-snapshot records are gone; caller must bootstrap";
  const auto snap = fx.ledger->snapshot_bytes();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->wal_seq, fx.ledger->durable_watermark());
  // Post-snapshot records read normally.
  fx.seal(2);
  const auto r2 =
      fx.ledger->read_records_after(snap->wal_seq, 100, nullptr);
  EXPECT_FALSE(r2.gap);
  EXPECT_EQ(r2.records.size(), 2u);
}

TEST(TruncateWalAfter, CutsTailAndReopensAtWatermark) {
  TempDir dir;
  std::uint64_t cut_seq = 0;
  std::array<std::uint8_t, 32> tip_at_cut{};
  {
    LedgerFixture fx(dir.str());
    fx.seal(3);
    cut_seq = fx.ledger->wal_seq();
    tip_at_cut = fx.chain.blocks().back().hash;
    fx.seal(4);  // these records get cut
  }
  ledger::truncate_wal_after(dir.str(), cut_seq);
  LedgerFixture fx(dir.str());
  EXPECT_EQ(fx.ledger->wal_seq(), cut_seq);
  EXPECT_EQ(fx.chain.blocks().back().hash, tip_at_cut);
  EXPECT_TRUE(fx.chain.validate_chain());
}

// --- streaming: shipper + follower ---

struct ReplFixture : LedgerFixture {
  std::optional<ReplicaSet> replicas;

  explicit ReplFixture(const TempDir& dir, std::size_t n = 1,
                       ledger::Options opts = good_opts())
      : LedgerFixture(dir.str() + "/primary", opts) {
    replicas.emplace(*ledger, chain, dir.str() + "/repl", n);
  }
};

TEST(Replication, FollowerConvergesToPrimary) {
  TempDir dir;
  ReplFixture fx(dir);
  fx.seal(6);
  ASSERT_TRUE(fx.replicas->sync());
  const auto& image = fx.replicas->follower(0).image();
  EXPECT_EQ(image.height(), fx.chain.height());
  EXPECT_EQ(image.blocks.back().hash, fx.chain.blocks().back().hash);
  EXPECT_EQ(image.balances, fx.chain.balances_map());
  EXPECT_EQ(fx.replicas->follower(0).durable_seq(),
            fx.ledger->durable_watermark());
}

TEST(Replication, FollowerRestartResumesFromOwnDisk) {
  TempDir dir;
  ReplFixture fx(dir);
  fx.seal(4);
  ASSERT_TRUE(fx.replicas->sync());
  const std::uint64_t durable = fx.replicas->follower(0).durable_seq();
  fx.replicas->restart_follower(0);
  EXPECT_EQ(fx.replicas->follower(0).durable_seq(), durable)
      << "acked records must survive a follower restart";
  fx.seal(3);
  ASSERT_TRUE(fx.replicas->sync());
  EXPECT_EQ(fx.replicas->follower(0).image().blocks.back().hash,
            fx.chain.blocks().back().hash);
}

TEST(Replication, ColdFollowerBootstrapsFromSnapshot) {
  TempDir dir;
  LedgerFixture fx(dir.str() + "/primary");
  fx.seal(6);
  fx.ledger->snapshot_now();  // old segments deleted: WAL can't serve seq 1+
  fx.seal(2);
  runtime::reset_stats();
  ReplicaSet reps(*fx.ledger, fx.chain, dir.str() + "/repl", 1);
  ASSERT_TRUE(reps.sync());
  EXPECT_GE(runtime::stats().repl_snapshots_shipped, 1u);
  const auto& image = reps.follower(0).image();
  EXPECT_EQ(image.height(), fx.chain.height());
  EXPECT_EQ(image.blocks.back().hash, fx.chain.blocks().back().hash);
  EXPECT_EQ(image.balances, fx.chain.balances_map());
}

TEST(Replication, MultipleFollowersEachConverge) {
  TempDir dir;
  ReplFixture fx(dir, /*n=*/3);
  fx.seal(5);
  ASSERT_TRUE(fx.replicas->sync());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fx.replicas->follower(i).image().blocks.back().hash,
              fx.chain.blocks().back().hash)
        << "follower " << i;
  }
}

TEST(Replication, RecoversFromDroppedShipments) {
  TempDir dir;
  ReplFixture fx(dir);
  runtime::reset_stats();
  fault::inject(fault::points::kReplShipDrop, fault::Schedule::times(2));
  fx.seal(5);
  ASSERT_TRUE(fx.replicas->sync());
  EXPECT_GT(fault::failures(fault::points::kReplShipDrop), 0u);
  EXPECT_GE(runtime::stats().repl_retransmits, 1u);
  EXPECT_EQ(fx.replicas->follower(0).image().blocks.back().hash,
            fx.chain.blocks().back().hash);
  fault::clear_all();
}

TEST(Replication, RecoversFromCorruptedShipments) {
  TempDir dir;
  ReplFixture fx(dir);
  fault::inject(fault::points::kReplShipCorrupt, fault::Schedule::once(2));
  fx.seal(5);
  ASSERT_TRUE(fx.replicas->sync());
  EXPECT_GT(fault::failures(fault::points::kReplShipCorrupt), 0u);
  fault::clear_all();
  EXPECT_EQ(fx.replicas->follower(0).image().blocks.back().hash,
            fx.chain.blocks().back().hash);
  EXPECT_FALSE(fx.replicas->follower(0).failed())
      << "in-transit corruption is a transport loss, not divergence";
}

TEST(Replication, RecoversFromLostAcks) {
  TempDir dir;
  ReplFixture fx(dir);
  fault::inject(fault::points::kReplAckLost, fault::Schedule::times(3));
  fx.seal(5);
  ASSERT_TRUE(fx.replicas->sync());
  EXPECT_GT(fault::failures(fault::points::kReplAckLost), 0u);
  fault::clear_all();
  EXPECT_EQ(fx.replicas->follower(0).durable_seq(),
            fx.ledger->durable_watermark());
}

TEST(Replication, PermanentDropExhaustsRetryBudgetFailStop) {
  TempDir dir;
  ReplFixture fx(dir);
  fault::inject(fault::points::kReplShipDrop, fault::Schedule::always());
  fx.seal(2);
  // sync() returns once the follower is marked failed (failed slots do
  // not count toward catch-up) — it must NOT spin forever.
  ASSERT_TRUE(fx.replicas->sync());
  fault::clear_all();
  const auto status = fx.replicas->shipper().status(0);
  EXPECT_TRUE(status.failed);
  EXPECT_NE(status.diagnostic.find("retry budget exhausted"),
            std::string::npos)
      << status.diagnostic;
}

TEST(Replication, DivergenceIsDetectedNeverSilentlyForked) {
  for (std::uint64_t hit = 1; hit <= 6; ++hit) {
    TempDir dir;
    ReplFixture fx(dir);
    fault::inject(fault::points::kReplShipDiverge,
                  fault::Schedule::once(hit));
    fx.seal(6);
    ASSERT_TRUE(fx.replicas->sync());
    const bool fired =
        fault::failures(fault::points::kReplShipDiverge) > 0;
    fault::clear_all();
    ASSERT_TRUE(fired) << "hit " << hit << " never shipped that record";
    // Give the fail-stop an extra round to propagate both ways.
    fx.replicas->pump();
    fx.replicas->pump();
    const bool detected = fx.replicas->shipper().status(0).failed ||
                          fx.replicas->follower(0).failed();
    EXPECT_TRUE(detected) << "hit " << hit << ": diverged silently";
    // A diverged follower must never be promotable.
    EXPECT_THROW((void)fx.replicas->promote(0), ledger::IoError)
        << "hit " << hit;
    // And whatever the follower holds is a prefix of the primary's real
    // chain OR its tip differs (detected fork) — never an undetected
    // different history of equal claim.
    const auto& image = fx.replicas->follower(0).image();
    if (!image.blocks.empty() && image.height() <= fx.chain.height()) {
      const auto& primary_at =
          fx.chain.blocks()[image.height() - 1].hash;
      if (image.blocks.back().hash != primary_at) {
        EXPECT_TRUE(detected);
      }
    }
  }
}

TEST(Replication, FollowerCrashMidApplyRestartsAndCatchesUp) {
  TempDir dir;
  ReplFixture fx(dir);
  fault::inject(fault::points::kReplFollowerCrash, fault::Schedule::once(3));
  fx.seal(3);
  bool crashed = false;
  for (int round = 0; round < 200; ++round) {
    if (fx.replicas->shipper().all_caught_up()) break;
    try {
      fx.replicas->pump();
    } catch (const ledger::CrashInjected&) {
      crashed = true;
      fx.replicas->restart_follower(0);
    }
  }
  fault::clear_all();
  EXPECT_TRUE(crashed);
  ASSERT_TRUE(fx.replicas->sync());
  EXPECT_EQ(fx.replicas->follower(0).image().blocks.back().hash,
            fx.chain.blocks().back().hash);
}

TEST(Replication, PromotionYieldsByteIdenticalPrimary) {
  TempDir dir;
  std::array<std::uint8_t, 32> primary_tip{};
  std::map<chain::Address, std::uint64_t> primary_balances;
  std::string promoted_dir;
  {
    ReplFixture fx(dir);
    fx.seal(5);
    ASSERT_TRUE(fx.replicas->sync());
    primary_tip = fx.chain.blocks().back().hash;
    primary_balances = fx.chain.balances_map();
    promoted_dir = fx.replicas->promote(0);
  }  // primary dies
  LedgerFixture promoted(promoted_dir);
  EXPECT_TRUE(promoted.chain.validate_chain());
  EXPECT_EQ(promoted.chain.blocks().back().hash, primary_tip);
  EXPECT_EQ(promoted.chain.balances_map(), primary_balances);
}

TEST(Replication, ParseReplicaCount) {
  EXPECT_EQ(parse_replica_count(nullptr), 0u);
  EXPECT_EQ(parse_replica_count(""), 0u);
  EXPECT_EQ(parse_replica_count("3"), 3u);
  EXPECT_EQ(parse_replica_count("0"), 0u);
  EXPECT_EQ(parse_replica_count("junk"), 0u);
  EXPECT_EQ(parse_replica_count("-1"), 0u);
  EXPECT_EQ(parse_replica_count("999"), 16u) << "clamped";
}

// --- follower read path: prefix consistency (satellite 3) ---

TEST(FollowerReadView, NeverObservesAStateThePrimaryNeverHad) {
  TempDir dir;
  chain::Chain chain;
  std::optional<ledger::Ledger> ledger;
  Drbg rng("repl-view", 11);
  KeyPair buyer_keys = KeyPair::generate(rng);
  KeyPair seller_keys = KeyPair::generate(rng);
  ledger::Options opts;
  opts.snapshot_interval = 0;
  ledger.emplace(chain, dir.str() + "/primary", opts);
  const auto buyer = chain.create_account(buyer_keys, 10'000);
  const auto seller = chain.create_account(seller_keys, 5'000);
  auto& verifier = chain.deploy<chain::PlonkVerifierContract>(
      buyer_keys, nullptr, plonk::VerifyingKey{}, "PlonkVerifier(stub)");
  auto& arbiter = chain.deploy<chain::KeySecureArbiter>(
      buyer_keys, nullptr, verifier, /*first_id=*/1, /*stride=*/1);

  ReplicaSet reps(*ledger, chain, dir.str() + "/repl", 1);
  core::FollowerReadView view(reps.follower(0));

  // The primary's exchange-state history, indexed by chain height:
  // what a consistent read at height h is allowed to return.
  std::map<std::uint64_t, std::optional<chain::ExchangeState>> truth;
  const auto record_truth = [&] {
    const auto x = arbiter.exchange(1);
    truth[chain.height()] =
        x ? std::optional<chain::ExchangeState>(x->state) : std::nullopt;
  };
  record_truth();

  const ff::Fr h_v = rng.random_fr();
  const ff::Fr key_cm = rng.random_fr();
  std::uint64_t id = 0;
  chain.call(
      buyer_keys, "lock",
      [&](CallContext& ctx) {
        id = arbiter.lock(ctx, seller, h_v, key_cm, /*timeout_blocks=*/2);
      },
      300, arbiter.address());
  ASSERT_EQ(id, 1u);
  record_truth();
  chain.advance_blocks(3);
  record_truth();
  chain.call(buyer_keys, "refund",
             [&](CallContext& ctx) { arbiter.refund(ctx, id); });
  record_truth();
  (void)seller;

  // Catch the follower up ONE PUMP AT A TIME; after every round the
  // view must report a (height, state) pair the primary actually went
  // through — a stale prefix is fine, an invented mix is not.
  for (int round = 0; round < 300; ++round) {
    reps.pump();
    view.refresh();
    const std::uint64_t h = view.height();
    EXPECT_LE(h, chain.height());
    if (h > 0) {
      // The follower's tip at height h is the primary's block at h.
      const auto& image = reps.follower(0).image();
      EXPECT_EQ(image.blocks.back().hash, chain.blocks()[h - 1].hash)
          << "round " << round << " height " << h;
    }
    const auto it = truth.find(h);
    if (it != truth.end()) {
      const auto got = view.exchange(1);
      const auto want = it->second;
      EXPECT_EQ(got.has_value(), want.has_value())
          << "round " << round << " height " << h;
      if (got && want) {
        EXPECT_EQ(got->state, *want) << "round " << round << " height " << h;
      }
    }
    if (reps.shipper().all_caught_up()) break;
  }
  ASSERT_TRUE(reps.sync());
  view.refresh();
  const auto final_view = view.exchange(1);
  ASSERT_TRUE(final_view.has_value());
  EXPECT_EQ(final_view->state, chain::ExchangeState::kRefunded);
  EXPECT_EQ(final_view->amount, 300u);
  EXPECT_TRUE(view.find_by_hv(h_v).has_value());
  EXPECT_EQ(view.balance(buyer), chain.balance(buyer));
}

// --- socket transport (satellite: src/replication/socket_link.cpp) ---

TEST(SocketLink, LoopbackDatagramsFifoBothDirections) {
  auto link = SocketLink::loopback();
  ASSERT_NE(link, nullptr);
  const auto d1 = ledger::frame_record(std::vector<std::uint8_t>{1, 2, 3});
  const auto d2 = ledger::frame_record(std::vector<std::uint8_t>{4});
  const auto d3 = ledger::frame_record(std::vector<std::uint8_t>{5, 6});
  link->send_to_follower(d1);
  link->send_to_follower(d2);
  link->send_to_primary(d3);
  // Datagrams survive the stream byte-identically, in order.
  EXPECT_EQ(*link->recv_at_follower(), d1);
  EXPECT_EQ(*link->recv_at_follower(), d2);
  EXPECT_FALSE(link->recv_at_follower().has_value());
  EXPECT_EQ(*link->recv_at_primary(), d3);
  EXPECT_FALSE(link->recv_at_primary().has_value());
  EXPECT_FALSE(link->primary_broken());
  EXPECT_FALSE(link->follower_broken());
}

TEST(SocketLink, CorruptInFlightDroppedStreamStaysAligned) {
  auto link = SocketLink::loopback();
  ASSERT_NE(link, nullptr);
  const auto d1 =
      ledger::frame_record(std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6});
  const auto d2 = ledger::frame_record(std::vector<std::uint8_t>{7, 8});
  fault::inject(fault::points::kReplShipCorrupt, fault::Schedule::once(1));
  link->send_to_follower(d1);  // corrupted on the wire
  link->send_to_follower(d2);  // clean
  fault::clear_all();
  // d1 is lost in transit (CRC-dead frame skipped by length prefix);
  // d2 still arrives and the connection stays healthy.
  const auto got = link->recv_at_follower();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, d2);
  EXPECT_FALSE(link->recv_at_follower().has_value());
  EXPECT_FALSE(link->follower_broken());
}

TEST(SocketLink, LargeDatagramDrainsAcrossKernelBackpressure) {
  auto link = SocketLink::loopback();
  ASSERT_NE(link, nullptr);
  // Far larger than any AF_UNIX socket buffer: the send queues what the
  // kernel refuses and later calls drain it as the peer reads.
  std::vector<std::uint8_t> payload(4u << 20);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  const auto datagram = ledger::frame_record(payload);
  link->send_to_follower(datagram);
  std::optional<std::vector<std::uint8_t>> got;
  for (int round = 0; round < 10'000 && !got; ++round) {
    got = link->recv_at_follower();
    // The primary-side recv (the shipper polling for acks each pump)
    // opportunistically re-flushes the primary's queued bytes.
    (void)link->recv_at_primary();
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, datagram);
  EXPECT_FALSE(link->primary_broken());
}

TEST(SocketLink, SeveredLinkDropsSendsAndRecvsEmpty) {
  auto link = SocketLink::loopback();
  ASSERT_NE(link, nullptr);
  link->sever();
  link->send_to_follower(
      ledger::frame_record(std::vector<std::uint8_t>{1}));  // dropped
  EXPECT_FALSE(link->recv_at_follower().has_value());
  EXPECT_FALSE(link->recv_at_primary().has_value());
  EXPECT_TRUE(link->primary_broken());
  EXPECT_TRUE(link->follower_broken());
}

TEST(SocketTransport, ResolvesFromEnv) {
  ::setenv("ZKDET_REPL_TRANSPORT", "socket", 1);
  EXPECT_EQ(resolve_transport(TransportKind::kDefault),
            TransportKind::kSocket);
  // An explicit kind is never overridden by the env.
  EXPECT_EQ(resolve_transport(TransportKind::kMemory),
            TransportKind::kMemory);
  ::setenv("ZKDET_REPL_TRANSPORT", "memory", 1);
  EXPECT_EQ(resolve_transport(TransportKind::kDefault),
            TransportKind::kMemory);
  ::unsetenv("ZKDET_REPL_TRANSPORT");
  EXPECT_EQ(resolve_transport(TransportKind::kDefault),
            TransportKind::kMemory);
}

TEST(SocketTransport, FollowerConvergesOverRealSockets) {
  TempDir dir;
  LedgerFixture fx(dir.str() + "/primary");
  ReplicaSet::Config cfg;
  cfg.transport = TransportKind::kSocket;
  ReplicaSet reps(*fx.ledger, fx.chain, dir.str() + "/repl", 1, cfg);
  ASSERT_NE(dynamic_cast<SocketLink*>(&reps.link(0)), nullptr)
      << "config must select the socket transport";
  fx.seal(6);
  ASSERT_TRUE(reps.sync());
  const auto& image = reps.follower(0).image();
  EXPECT_EQ(image.height(), fx.chain.height());
  EXPECT_EQ(image.blocks.back().hash, fx.chain.blocks().back().hash);
  EXPECT_EQ(image.balances, fx.chain.balances_map());
}

TEST(SocketTransport, RecoversFromDropsAndCorruption) {
  TempDir dir;
  LedgerFixture fx(dir.str() + "/primary");
  ReplicaSet::Config cfg;
  cfg.transport = TransportKind::kSocket;
  ReplicaSet reps(*fx.ledger, fx.chain, dir.str() + "/repl", 1, cfg);
  fault::inject(fault::points::kReplShipDrop, fault::Schedule::times(2));
  fault::inject(fault::points::kReplShipCorrupt, fault::Schedule::once(4));
  fx.seal(5);
  ASSERT_TRUE(reps.sync());
  EXPECT_GT(fault::failures(fault::points::kReplShipDrop), 0u);
  fault::clear_all();
  EXPECT_FALSE(reps.follower(0).failed())
      << "transport losses are retried, never treated as divergence";
  EXPECT_EQ(reps.follower(0).image().blocks.back().hash,
            fx.chain.blocks().back().hash);
}

// --- deadline-bounded shutdown sync (satellite: final_sync) ---

TEST(FinalSync, HealthyFollowersCatchUpFully) {
  TempDir dir;
  ReplFixture fx(dir);
  fx.seal(6);
  ASSERT_TRUE(fx.replicas->final_sync());
  EXPECT_EQ(fx.replicas->follower(0).image().blocks.back().hash,
            fx.chain.blocks().back().hash);
  EXPECT_EQ(fx.replicas->follower(0).durable_seq(),
            fx.ledger->durable_watermark());
}

TEST(FinalSync, DeadTransportGivesUpAfterBoundedBudget) {
  TempDir dir;
  ReplFixture fx(dir);
  fx.seal(3);
  // Every shipment vanishes: no follower progress is possible, but the
  // shipper's own retry budget (8 attempts) has not fail-stopped the
  // follower yet. final_sync must give up after its bounded budget of
  // fruitless pumps instead of stalling shutdown.
  fault::inject(fault::points::kReplShipDrop, fault::Schedule::always());
  runtime::BackoffPolicy tight;
  tight.max_attempts = 3;
  tight.base_delay_us = 1;
  tight.max_delay_us = 10;
  EXPECT_FALSE(fx.replicas->final_sync(tight));
  fault::clear_all();
  // The transport heals: a later sync still converges (give-up was a
  // deadline, not a fail-stop).
  ASSERT_TRUE(fx.replicas->sync());
  EXPECT_EQ(fx.replicas->follower(0).image().blocks.back().hash,
            fx.chain.blocks().back().hash);
}

TEST(FinalSync, SystemShutdownBoundedWithSeveredSocketTransport) {
  TempDir dir;
  ::setenv("ZKDET_REPLICAS", "1", 1);
  ::setenv("ZKDET_REPL_TRANSPORT", "socket", 1);
  auto sys = std::make_unique<core::ZkdetSystem>(1 << 12, 41, dir.str());
  ::unsetenv("ZKDET_REPLICAS");
  ::unsetenv("ZKDET_REPL_TRANSPORT");
  ASSERT_NE(sys->replicas(), nullptr);
  auto* link = dynamic_cast<SocketLink*>(&sys->replicas()->link(0));
  ASSERT_NE(link, nullptr);
  // Some committed work, then the follower's transport dies (machine
  // gone). The destructor's final replica sync must complete within its
  // deadline budget instead of stalling shutdown forever.
  Drbg rng("final-sync-shutdown", 1);
  auto kp = KeyPair::generate(rng);
  const auto addr = sys->chain().create_account(kp, 1'000);
  sys->chain().call(kp, "touch", [](CallContext&) {}, 1, addr);
  link->sever();
  sys.reset();  // must return; reaching the next line IS the regression
  SUCCEED();
}

}  // namespace
}  // namespace zkdet::replication
