// RPC serving layer tests: wire codec strictness, stream reassembly
// over damaged input, deterministic admission/shedding, the end-to-end
// socket path, prove coalescing, follower-served reads, and the
// byte-identity acceptance property — the same intent stream driven
// in-process and through the RPC server must seal byte-identical chain
// state (tip hash, balances, WAL bytes).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <optional>
#include <vector>

#include "chain/arbiter.hpp"
#include "core/circuits.hpp"
#include "core/follower_view.hpp"
#include "core/system.hpp"
#include "core/transformation.hpp"
#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/wal.hpp"
#include "plonk/plonk.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "runtime/stats.hpp"

namespace zkdet::rpc {
namespace {

namespace fs = std::filesystem;
using chain::ExchangeState;
using ff::Fr;

struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("zkdet-rpc-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1)));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

Request make_rq(Op op, std::uint64_t id, std::uint64_t client = 0,
                std::uint64_t a = 0, std::uint64_t b = 0, std::uint64_t c = 0,
                std::vector<Fr> frs = {}) {
  Request rq;
  rq.op = op;
  rq.id = id;
  rq.client = client;
  rq.a = a;
  rq.b = b;
  rq.c = c;
  rq.frs = std::move(frs);
  return rq;
}

// Concatenated bytes of every WAL segment, in segment order.
std::vector<std::uint8_t> wal_bytes(const fs::path& dir) {
  std::vector<fs::path> segments;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("wal-", 0) == 0) segments.push_back(e.path());
  }
  std::sort(segments.begin(), segments.end());
  std::vector<std::uint8_t> out;
  for (const auto& seg : segments) {
    std::ifstream in(seg, std::ios::binary);
    out.insert(out.end(), std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
  }
  return out;
}

// --- wire codec ---------------------------------------------------------

TEST(RpcWire, RequestRoundTrip) {
  Request rq = make_rq(Op::kLock, 42, 2, 1, 5'000, 30,
                       {Fr::from_u64(7), Fr::from_u64(9)});
  const auto bytes = encode_request(rq);
  const auto back = decode_request(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->op, Op::kLock);
  EXPECT_EQ(back->id, 42u);
  EXPECT_EQ(back->client, 2u);
  EXPECT_EQ(back->a, 1u);
  EXPECT_EQ(back->b, 5'000u);
  EXPECT_EQ(back->c, 30u);
  ASSERT_EQ(back->frs.size(), 2u);
  EXPECT_EQ(back->frs[1], Fr::from_u64(9));
}

TEST(RpcWire, ResponseRoundTrip) {
  Response rs;
  rs.id = 17;
  rs.status = Status::kOverloaded;
  rs.value = 3;
  rs.aux = 11;
  rs.fr = Fr::from_u64(123);
  rs.bytes = {9, 8, 7};
  rs.text = "busy";
  const auto bytes = encode_response(rs);
  const auto back = decode_response(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, 17u);
  EXPECT_EQ(back->status, Status::kOverloaded);
  EXPECT_EQ(back->value, 3u);
  EXPECT_EQ(back->aux, 11u);
  EXPECT_EQ(back->fr, Fr::from_u64(123));
  EXPECT_EQ(back->bytes, (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_EQ(back->text, "busy");
}

TEST(RpcWire, DamagedPayloadsRejected) {
  const auto bytes = encode_request(make_rq(Op::kPing, 1));
  // Truncated.
  EXPECT_FALSE(decode_request(
      std::span<const std::uint8_t>(bytes).first(bytes.size() - 1)));
  // Trailing garbage.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(decode_request(padded));
  // Unknown op.
  auto bad_op = bytes;
  bad_op[0] = 0xff;
  EXPECT_FALSE(decode_request(bad_op));
  // Response decoder on request bytes (status byte out of range or
  // layout mismatch) must not crash; empty input must fail cleanly.
  EXPECT_FALSE(decode_response(std::span<const std::uint8_t>{}));
}

// --- stream reassembly --------------------------------------------------

TEST(RpcFrameBuffer, ReassemblesAcrossArbitraryChunks) {
  const auto f1 = ledger::frame_record(std::vector<std::uint8_t>{1, 2, 3});
  const auto f2 = ledger::frame_record(std::vector<std::uint8_t>{4, 5});
  std::vector<std::uint8_t> wire(f1);
  wire.insert(wire.end(), f2.begin(), f2.end());
  // Feed one byte at a time: payloads must pop exactly when complete.
  sockio::FrameBuffer buf;
  std::vector<std::vector<std::uint8_t>> got;
  for (const std::uint8_t b : wire) {
    buf.stream().push_back(b);
    while (auto p = buf.next_payload()) got.push_back(std::move(*p));
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(got[1], (std::vector<std::uint8_t>{4, 5}));
  EXPECT_EQ(buf.pending_bytes(), 0u);
}

TEST(RpcFrameBuffer, CorruptFrameSkippedStreamStaysAligned) {
  auto f1 = ledger::frame_record(std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6, 7, 8});
  const auto f2 = ledger::frame_record(std::vector<std::uint8_t>{42});
  f1[f1.size() - 2] ^= 0x10;  // damage f1's payload: CRC now fails
  sockio::FrameBuffer buf;
  buf.stream().insert(buf.stream().end(), f1.begin(), f1.end());
  buf.stream().insert(buf.stream().end(), f2.begin(), f2.end());
  // f1 is dropped (lost in transit), f2 still arrives.
  const auto p = buf.next_payload();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, std::vector<std::uint8_t>{42});
  EXPECT_FALSE(buf.poisoned());
}

TEST(RpcFrameBuffer, AbsurdLengthPrefixPoisons) {
  sockio::FrameBuffer buf;
  // Length prefix 0xffffffff: cannot be skipped, must poison.
  buf.stream().assign({0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0});
  EXPECT_FALSE(buf.next_payload().has_value());
  EXPECT_TRUE(buf.poisoned());
}

// --- admission ----------------------------------------------------------

TEST(RpcAdmission, BoundedQueueShedsDeterministically) {
  AdmissionConfig cfg;
  cfg.queue_capacity = 2;
  cfg.max_inflight = 1;
  AdmissionQueue q(cfg);
  EXPECT_TRUE(q.offer(1, make_rq(Op::kPing, 1)));
  EXPECT_TRUE(q.offer(1, make_rq(Op::kPing, 2)));
  EXPECT_FALSE(q.offer(1, make_rq(Op::kPing, 3)));  // full: shed
  EXPECT_EQ(q.depth(), 2u);
  // FIFO rounds of at most max_inflight.
  auto round = q.take_round();
  ASSERT_EQ(round.size(), 1u);
  EXPECT_EQ(round[0].request.id, 1u);
  round = q.take_round();
  ASSERT_EQ(round.size(), 1u);
  EXPECT_EQ(round[0].request.id, 2u);
  EXPECT_TRUE(q.take_round().empty());
}

TEST(RpcAdmission, EnvConfigParsesAndClamps) {
  ::setenv("ZKDET_RPC_QUEUE", "7", 1);
  ::setenv("ZKDET_RPC_INFLIGHT", "3", 1);
  auto cfg = AdmissionConfig::from_env();
  EXPECT_EQ(cfg.queue_capacity, 7u);
  EXPECT_EQ(cfg.max_inflight, 3u);
  ::setenv("ZKDET_RPC_QUEUE", "nonsense", 1);
  ::setenv("ZKDET_RPC_INFLIGHT", "0", 1);
  cfg = AdmissionConfig::from_env();
  EXPECT_EQ(cfg.queue_capacity, AdmissionConfig{}.queue_capacity);
  EXPECT_EQ(cfg.max_inflight, AdmissionConfig{}.max_inflight);
  ::unsetenv("ZKDET_RPC_QUEUE");
  ::unsetenv("ZKDET_RPC_INFLIGHT");
}

// --- end-to-end over a real unix socket ---------------------------------

struct RpcFixture : ::testing::Test {
  static core::ZkdetSystem& sys() {
    static core::ZkdetSystem s(1 << 14, 21);
    return s;
  }
  static core::TransformationProtocol& tp() {
    static core::TransformationProtocol t(sys());
    return t;
  }
  static Dispatcher& disp() {
    static Dispatcher d(sys(), tp(), /*seed=*/5);
    return d;
  }
  void TearDown() override { fault::clear_all(); }
};

TEST_F(RpcFixture, FullExchangeOverUnixSocket) {
  TempDir dir;
  fs::create_directories(dir.path);
  const std::string sock = (dir.path / "rpc.sock").string();
  auto listener = sockio::listen_unix(sock);
  ASSERT_TRUE(listener.has_value());
  Server server(disp(), std::move(*listener));
  auto client = Client::connect_unix(sock);
  ASSERT_TRUE(client.has_value());

  std::uint64_t id = 1;
  auto call = [&](Request rq) {
    auto rs = client->call(server, rq);
    EXPECT_TRUE(rs.has_value()) << "no response for op "
                                << op_name(rq.op);
    return rs.value_or(Response{});
  };

  // ping echoes.
  auto rs = call(make_rq(Op::kPing, id++, 0, 777));
  EXPECT_EQ(rs.status, Status::kOk);
  EXPECT_EQ(rs.value, 777u);

  // Register a seller and a buyer.
  const auto seller = call(make_rq(Op::kRegister, id++, 0, 100'000));
  ASSERT_EQ(seller.status, Status::kOk);
  const auto buyer = call(make_rq(Op::kRegister, id++, 0, 500'000));
  ASSERT_EQ(buyer.status, Status::kOk);
  EXPECT_NE(seller.value, buyer.value);

  // Seller publishes a dataset and offers it.
  const auto pub = call(make_rq(Op::kPublish, id++, seller.value, 0, 0, 0,
                                {Fr::from_u64(10), Fr::from_u64(20)}));
  ASSERT_EQ(pub.status, Status::kOk);
  const auto offer =
      call(make_rq(Op::kOffer, id++, seller.value, pub.value));
  ASSERT_EQ(offer.status, Status::kOk);

  // Buyer locks payment; operator custodies k_v.
  const auto lock = call(
      make_rq(Op::kLock, id++, buyer.value, offer.value, 5'000, 50));
  ASSERT_EQ(lock.status, Status::kOk);
  const std::uint64_t exchange_id = lock.value;
  ASSERT_GE(exchange_id, 1u);

  // Exchange visible through the read path, locked.
  auto xi = call(make_rq(Op::kReadExchange, id++, 0, exchange_id));
  ASSERT_EQ(xi.status, Status::kOk);
  EXPECT_EQ(xi.value, static_cast<std::uint64_t>(ExchangeState::kLocked));
  EXPECT_EQ(xi.aux, 5'000u);

  // Seller settles (pi_k proved server-side, folded verification).
  const auto settle =
      call(make_rq(Op::kSettle, id++, seller.value, exchange_id));
  ASSERT_EQ(settle.status, Status::kOk);

  xi = call(make_rq(Op::kReadExchange, id++, 0, exchange_id));
  EXPECT_EQ(xi.value, static_cast<std::uint64_t>(ExchangeState::kSettled));

  // Balances moved: seller gained the escrow amount.
  const auto bal = call(make_rq(Op::kReadBalance, id++, seller.value));
  ASSERT_EQ(bal.status, Status::kOk);
  EXPECT_EQ(bal.value, 100'000u + 5'000u);
  EXPECT_TRUE(sys().chain().validate_chain());
}

TEST_F(RpcFixture, OverloadShedsTypedNeverSilent) {
  TempDir dir;
  fs::create_directories(dir.path);
  const std::string sock = (dir.path / "rpc.sock").string();
  auto listener = sockio::listen_unix(sock);
  ASSERT_TRUE(listener.has_value());
  AdmissionConfig cfg;
  cfg.queue_capacity = 4;
  cfg.max_inflight = 2;
  Server server(disp(), std::move(*listener), cfg);
  auto client = Client::connect_unix(sock);
  ASSERT_TRUE(client.has_value());

  const auto before = runtime::stats();
  // 12 pings land before the server pumps once: 2x+ the queue bound.
  constexpr std::uint64_t kBurst = 12;
  for (std::uint64_t i = 1; i <= kBurst; ++i) {
    ASSERT_TRUE(client->send(make_rq(Op::kPing, 1000 + i, 0, i)));
  }
  // Pump to quiescence; collect every response.
  for (int round = 0; round < 50; ++round) {
    server.pump();
    client->flush();
    client->poll();
  }
  std::size_t ok = 0;
  std::size_t overloaded = 0;
  for (std::uint64_t i = 1; i <= kBurst; ++i) {
    const auto rs = client->take(1000 + i);
    ASSERT_TRUE(rs.has_value()) << "request " << i << " got NO response";
    if (rs->status == Status::kOk) {
      EXPECT_EQ(rs->value, i);  // echo intact
      ++ok;
    } else {
      EXPECT_EQ(rs->status, Status::kOverloaded);
      EXPECT_FALSE(rs->text.empty());
      ++overloaded;
    }
  }
  // Every request answered exactly once; the queue bound held.
  EXPECT_EQ(ok + overloaded, kBurst);
  EXPECT_EQ(ok, cfg.queue_capacity);
  EXPECT_EQ(overloaded, kBurst - cfg.queue_capacity);
  const auto after = runtime::stats();
  EXPECT_EQ(after.rpc_shed - before.rpc_shed, overloaded);
  EXPECT_EQ(after.rpc_admitted - before.rpc_admitted, ok);
  EXPECT_EQ(after.rpc_queue_depth, 0u);
}

TEST_F(RpcFixture, ProveRequestsCoalesceIntoOneBatch) {
  TempDir dir;
  fs::create_directories(dir.path);
  const std::string sock = (dir.path / "rpc.sock").string();
  auto listener = sockio::listen_unix(sock);
  ASSERT_TRUE(listener.has_value());
  Server server(disp(), std::move(*listener));
  auto client = Client::connect_unix(sock);
  ASSERT_TRUE(client.has_value());

  const auto before = runtime::stats();
  constexpr std::uint64_t kProves = 3;
  for (std::uint64_t i = 1; i <= kProves; ++i) {
    ASSERT_TRUE(client->send(make_rq(
        Op::kProve, 2000 + i, 0, 0, 0, 0,
        {Fr::from_u64(100 + i), Fr::from_u64(200 + i),
         Fr::from_u64(300 + i)})));
  }
  for (int round = 0; round < 50 && client->stashed() < kProves; ++round) {
    server.pump();
    client->flush();
    client->poll();
  }
  const auto* keys = sys().find_keys("pi_k");
  ASSERT_NE(keys, nullptr);
  for (std::uint64_t i = 1; i <= kProves; ++i) {
    const auto rs = client->take(2000 + i);
    ASSERT_TRUE(rs.has_value());
    ASSERT_EQ(rs->status, Status::kOk);
    const auto proof = plonk::Proof::from_bytes(rs->bytes);
    ASSERT_TRUE(proof.has_value());
    // The proof verifies against pi_k's public inputs (k_c, c, h_v)
    // recomputed natively from the witness this request carried.
    const Fr key = Fr::from_u64(100 + i);
    const Fr blinder = Fr::from_u64(200 + i);
    const Fr k_v = Fr::from_u64(300 + i);
    EXPECT_TRUE(plonk::verify(
        keys->vk, {key + k_v, core::commit_key(key, blinder),
                   core::hash_key(k_v)},
        *proof));
  }
  const auto after = runtime::stats();
  // All three proves coalesced into one dispatch round's prover group.
  EXPECT_EQ(after.rpc_batched_proves - before.rpc_batched_proves, kProves);
  EXPECT_EQ(after.rpc_inflight, 0u);
}

TEST_F(RpcFixture, ProtocolViolationDropsSessionNotServer) {
  TempDir dir;
  fs::create_directories(dir.path);
  const std::string sock = (dir.path / "rpc.sock").string();
  auto listener = sockio::listen_unix(sock);
  ASSERT_TRUE(listener.has_value());
  Server server(disp(), std::move(*listener));

  // A client that speaks valid CRC frames with garbage payloads.
  auto rogue = sockio::connect_unix(sock);
  ASSERT_TRUE(rogue.has_value());
  const auto junk = ledger::frame_record(std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef});
  ASSERT_EQ(sockio::write_some(*rogue, junk).status, sockio::IoStatus::kOk);
  server.run_until_idle();
  EXPECT_EQ(server.session_count(), 0u);  // rogue session reaped

  // A well-behaved client still gets service afterwards.
  auto client = Client::connect_unix(sock);
  ASSERT_TRUE(client.has_value());
  const auto rs = client->call(server, make_rq(Op::kPing, 1, 0, 5));
  ASSERT_TRUE(rs.has_value());
  EXPECT_EQ(rs->value, 5u);
}

// --- follower-served reads ----------------------------------------------

TEST(RpcFollowerRead, ReadsServeFromReplicaPrefix) {
  TempDir dir;
  ::setenv("ZKDET_REPLICAS", "1", 1);
  auto sys = std::make_unique<core::ZkdetSystem>(1 << 12, 31, dir.str());
  ::unsetenv("ZKDET_REPLICAS");
  ASSERT_NE(sys->replicas(), nullptr);
  core::TransformationProtocol tp(*sys);
  Dispatcher disp(*sys, tp, /*seed=*/9);
  core::FollowerReadView view(sys->replicas()->follower(0));
  disp.serve_reads_from(&view);

  // Two registrations and a transfer, driven through the dispatcher.
  std::vector<Request> setup;
  setup.push_back(make_rq(Op::kRegister, 1, 0, 10'000));
  setup.push_back(make_rq(Op::kRegister, 2, 0, 1'000));
  auto rs = disp.run(setup);
  ASSERT_EQ(rs[0].status, Status::kOk);
  ASSERT_EQ(rs[1].status, Status::kOk);
  std::vector<Request> xfer;
  xfer.push_back(make_rq(Op::kTransfer, 3, rs[0].value, rs[1].value, 2'500));
  ASSERT_EQ(disp.run(xfer)[0].status, Status::kOk);

  // Before any replication pump the follower serves a stale prefix —
  // height never exceeds the primary's, balance is some committed
  // prefix's value.
  std::vector<Request> read1;
  read1.push_back(make_rq(Op::kReadBalance, 4, 2));
  const auto stale = disp.run(read1)[0];
  ASSERT_EQ(stale.status, Status::kOk);
  EXPECT_LE(stale.aux, sys->chain().height());

  // After sync the follower-served balance matches the primary exactly.
  ASSERT_TRUE(sys->replicas()->sync());
  std::vector<Request> read2;
  read2.push_back(make_rq(Op::kReadBalance, 5, 2));
  const auto fresh = disp.run(read2)[0];
  ASSERT_EQ(fresh.status, Status::kOk);
  EXPECT_EQ(fresh.value, 1'000u + 2'500u);
  EXPECT_EQ(fresh.aux, sys->chain().height());
}

// --- the byte-identity acceptance property ------------------------------

// The same intent stream, split into the same rounds, driven (a)
// straight into Dispatcher::run and (b) through a real socket client
// against a Server, must leave byte-identical chain state: same tip
// hash, same balances, and byte-for-byte identical WAL journals.
TEST(RpcByteIdentity, InProcessAndSocketRunsSealIdenticalState) {
  // Round structure: ids within a round may not depend on effects of
  // the same round (documented dispatcher contract), so the stream
  // advances in three rounds. Handles/ids are deterministic for a
  // fixed (system seed, dispatcher seed, stream).
  const std::vector<std::vector<Request>> rounds = [] {
    std::vector<std::vector<Request>> r(3);
    r[0].push_back(make_rq(Op::kRegister, 1, 0, 100'000));  // -> handle 1
    r[0].push_back(make_rq(Op::kRegister, 2, 0, 500'000));  // -> handle 2
    r[0].push_back(make_rq(Op::kPublish, 3, 1, 0, 0, 0,
                           {ff::Fr::from_u64(5), ff::Fr::from_u64(6)}));
    r[1].push_back(make_rq(Op::kOffer, 4, 1, 1));       // token 1 -> offer 1
    r[1].push_back(make_rq(Op::kTransfer, 5, 2, 1, 7'000));
    r[2].push_back(make_rq(Op::kLock, 6, 2, 1, 9'000, 40));  // -> exchange 1
    return r;
  }();
  const std::vector<Request> settle_round = {
      make_rq(Op::kSettle, 7, 1, 1),
      make_rq(Op::kTransfer, 8, 2, 1, 1'000),
  };

  TempDir dir_a;
  TempDir dir_b;
  std::vector<std::uint8_t> tip_a;
  std::vector<std::uint8_t> tip_b;
  std::map<std::string, std::uint64_t> bal_a;
  std::map<std::string, std::uint64_t> bal_b;

  {  // Leg A: in-process — Dispatcher::run called directly.
    core::ZkdetSystem sys(1 << 14, 55, dir_a.str());
    core::TransformationProtocol tp(sys);
    Dispatcher disp(sys, tp, /*seed=*/77);
    for (const auto& round : rounds) {
      for (const auto& rs : disp.run(round)) {
        ASSERT_EQ(rs.status, Status::kOk) << rs.text;
      }
    }
    for (const auto& rs : disp.run(settle_round)) {
      ASSERT_EQ(rs.status, Status::kOk) << rs.text;
    }
    const auto h = chain::Chain::block_hash(sys.chain().blocks().back());
    tip_a.assign(h.begin(), h.end());
    bal_a = sys.chain().balances_map();
  }
  {  // Leg B: the same rounds through a real socket server.
    core::ZkdetSystem sys(1 << 14, 55, dir_b.str());
    core::TransformationProtocol tp(sys);
    Dispatcher disp(sys, tp, /*seed=*/77);
    fs::create_directories(dir_b.path);
    const std::string sock = (dir_b.path / "rpc.sock").string();
    auto listener = sockio::listen_unix(sock);
    ASSERT_TRUE(listener.has_value());
    AdmissionConfig cfg;  // roomy: each batch lands in one round
    cfg.queue_capacity = 64;
    cfg.max_inflight = 64;
    Server server(disp, std::move(*listener), cfg);
    auto client = Client::connect_unix(sock);
    ASSERT_TRUE(client.has_value());
    auto drive = [&](const std::vector<Request>& batch) {
      for (const auto& rq : batch) ASSERT_TRUE(client->send(rq));
      for (int i = 0; i < 200 && client->stashed() < batch.size(); ++i) {
        server.pump();
        client->flush();
        client->poll();
      }
      for (const auto& rq : batch) {
        const auto rs = client->take(rq.id);
        ASSERT_TRUE(rs.has_value()) << "no response for id " << rq.id;
        ASSERT_EQ(rs->status, Status::kOk) << rs->text;
      }
    };
    for (const auto& round : rounds) drive(round);
    drive(settle_round);
    const auto h = chain::Chain::block_hash(sys.chain().blocks().back());
    tip_b.assign(h.begin(), h.end());
    bal_b = sys.chain().balances_map();
  }

  EXPECT_EQ(tip_a, tip_b);
  EXPECT_EQ(bal_a, bal_b);
  // Both systems are destroyed: the journals are final. Byte-identical.
  const auto wal_a = wal_bytes(dir_a.path);
  const auto wal_b = wal_bytes(dir_b.path);
  ASSERT_FALSE(wal_a.empty());
  EXPECT_EQ(wal_a, wal_b);
}

}  // namespace
}  // namespace zkdet::rpc
