// Concurrent proving runtime: thread pool semantics, proof determinism
// across worker counts, job-service stress, key-cache accounting, and
// batched verification.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <numeric>
#include <vector>

#include "core/circuits.hpp"
#include "crypto/rng.hpp"
#include "ec/msm.hpp"
#include "ff/ntt.hpp"
#include "plonk/plonk.hpp"
#include "runtime/prover_service.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace zkdet;
using ff::Fr;
using runtime::ProofJob;
using runtime::ProverService;
using runtime::ThreadPool;

// Shared SRS: large enough for the pi_k circuit family used throughout.
const plonk::Srs& srs() {
  static crypto::Drbg rng("test-runtime-srs", 99);
  static const plonk::Srs s = plonk::Srs::setup((1 << 12) + 16, rng);
  return s;
}

gadgets::CircuitBuilder key_circuit(std::uint64_t key, std::uint64_t blinder,
                                    std::uint64_t k_v) {
  return core::build_key_circuit(Fr::from_u64(key), Fr::from_u64(blinder),
                                 Fr::from_u64(k_v));
}

// Every test leaves the pool single-threaded so suites stay independent.
class RuntimeTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::instance().configure(1); }
};

TEST_F(RuntimeTest, ParallelForCoversRangeExactlyOnce) {
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    ThreadPool::instance().configure(workers);
    const std::size_t n = 10'007;  // prime: chunks never divide evenly
    std::vector<int> hits(n, 0);
    ThreadPool::instance().parallel_for(
        n, 7, [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) ++hits[i];
        });
    const long total = std::accumulate(hits.begin(), hits.end(), 0L);
    EXPECT_EQ(total, static_cast<long>(n)) << "workers=" << workers;
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }))
        << "workers=" << workers;
  }
}

TEST_F(RuntimeTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool::instance().configure(4);
  const std::size_t outer = 8, inner = 1000;
  std::vector<std::uint64_t> sums(outer, 0);
  ThreadPool::instance().parallel_for(
      outer, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t o = b; o < e; ++o) {
          std::vector<std::uint64_t> parts(inner, 0);
          ThreadPool::instance().parallel_for(
              inner, 64, [&](std::size_t ib, std::size_t ie) {
                for (std::size_t i = ib; i < ie; ++i) parts[i] = i;
              });
          sums[o] = std::accumulate(parts.begin(), parts.end(), 0ull);
        }
      });
  for (std::size_t o = 0; o < outer; ++o) {
    EXPECT_EQ(sums[o], inner * (inner - 1) / 2);
  }
}

TEST_F(RuntimeTest, ParallelForPropagatesExceptions) {
  ThreadPool::instance().configure(4);
  EXPECT_THROW(ThreadPool::instance().parallel_for(
                   100, 1,
                   [&](std::size_t b, std::size_t) {
                     if (b == 42) throw std::runtime_error("chunk failure");
                   }),
               std::runtime_error);
}

TEST_F(RuntimeTest, MsmOnPoolMatchesNaive) {
  ThreadPool::instance().configure(4);
  crypto::Drbg rng("msm-pool", 5);
  const std::size_t n = 600;  // above the serial-fallback threshold
  std::vector<Fr> scalars(n);
  std::vector<ec::G1> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    scalars[i] = rng.random_fr();
    points[i] = ec::g1_mul_generator(rng.random_fr());
  }
  EXPECT_EQ(ec::msm(scalars, points), ec::msm_naive(scalars, points));
}

TEST_F(RuntimeTest, NttIdenticalAcrossWorkerCounts) {
  crypto::Drbg rng("ntt-workers", 6);
  const std::size_t n = 1ull << 13;  // above the parallel threshold
  std::vector<Fr> input(n);
  for (auto& x : input) x = rng.random_fr();
  const ff::EvaluationDomain dom(n);

  ThreadPool::instance().configure(1);
  std::vector<Fr> serial = input;
  dom.coset_fft(serial, Fr::generator());
  for (const std::size_t workers : {2u, 8u}) {
    ThreadPool::instance().configure(workers);
    std::vector<Fr> par = input;
    dom.coset_fft(par, Fr::generator());
    EXPECT_EQ(par, serial) << "workers=" << workers;
    dom.coset_ifft(par, Fr::generator());
    EXPECT_EQ(par, input) << "round-trip, workers=" << workers;
  }
}

// The acceptance property: the same (circuit, witness, job rng) yields
// byte-identical proofs no matter how many workers run the stages.
TEST_F(RuntimeTest, ProofsByteIdenticalAtOneTwoEightWorkers) {
  const gadgets::CircuitBuilder bld = key_circuit(11, 22, 33);
  std::vector<std::uint8_t> reference;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    ThreadPool::instance().configure(workers);
    ProverService svc(srs());
    ProofJob job;
    job.circuit_id = "pi_k";
    job.cs = std::make_shared<const plonk::ConstraintSystem>(bld.cs());
    job.witness = bld.witness();
    job.rng = crypto::Drbg(42);
    const auto proof = svc.prove(std::move(job));
    ASSERT_TRUE(proof.has_value()) << "workers=" << workers;
    const auto keys = svc.find_keys("pi_k");
    ASSERT_NE(keys, nullptr);
    EXPECT_TRUE(plonk::verify(
        keys->vk, bld.cs().extract_public_inputs(bld.witness()), *proof));
    const auto bytes = proof->to_bytes();
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "workers=" << workers;
    }
  }
}

TEST_F(RuntimeTest, StressThirtyTwoConcurrentJobs) {
  ThreadPool::instance().configure(8);
  runtime::reset_stats();
  ProverService svc(srs());

  constexpr std::size_t kJobs = 32;
  std::vector<gadgets::CircuitBuilder> builders;
  builders.reserve(kJobs);
  std::vector<std::future<std::optional<plonk::Proof>>> futures;
  futures.reserve(kJobs);
  for (std::size_t j = 0; j < kJobs; ++j) {
    // Two circuit ids, alternating: exercises both cache contention on a
    // shared shape and concurrent first-use preprocessing.
    builders.push_back(key_circuit(100 + j, 200 + j, 300 + j));
    ProofJob job;
    job.circuit_id = (j % 2 == 0) ? "pi_k/even" : "pi_k/odd";
    job.cs =
        std::make_shared<const plonk::ConstraintSystem>(builders[j].cs());
    job.witness = builders[j].witness();
    job.rng = crypto::Drbg(1000 + j);
    futures.push_back(svc.submit(std::move(job)));
  }
  for (std::size_t j = 0; j < kJobs; ++j) {
    const auto proof = futures[j].get();
    ASSERT_TRUE(proof.has_value()) << "job " << j;
    const auto keys =
        svc.find_keys((j % 2 == 0) ? "pi_k/even" : "pi_k/odd");
    ASSERT_NE(keys, nullptr);
    EXPECT_TRUE(plonk::verify(
        keys->vk, builders[j].cs().extract_public_inputs(builders[j].witness()),
        *proof))
        << "job " << j;
  }

  const auto s = runtime::stats();
  EXPECT_EQ(s.jobs_submitted, kJobs);
  EXPECT_EQ(s.jobs_completed, kJobs);
  EXPECT_EQ(s.jobs_failed, 0u);
  // 32 jobs over 2 circuit ids: exactly 2 preprocessing misses.
  EXPECT_EQ(s.key_cache_misses, 2u);
  EXPECT_EQ(s.key_cache_hits, kJobs - 2);
}

TEST_F(RuntimeTest, KeyCacheHitsMissesAndLruEviction) {
  ThreadPool::instance().configure(1);
  runtime::reset_stats();
  ProverService svc(srs(), /*key_cache_capacity=*/2);

  const auto a = key_circuit(1, 2, 3);
  const auto b = key_circuit(4, 5, 6);
  const auto c = key_circuit(7, 8, 9);

  EXPECT_NE(svc.keys_for("a", a.cs()), nullptr);  // miss
  EXPECT_NE(svc.keys_for("a", a.cs()), nullptr);  // hit
  EXPECT_NE(svc.keys_for("b", b.cs()), nullptr);  // miss
  EXPECT_NE(svc.keys_for("c", c.cs()), nullptr);  // miss -> evicts "a"

  EXPECT_EQ(svc.key_cache_size(), 2u);
  EXPECT_EQ(svc.find_keys("a"), nullptr);  // evicted (least recently used)
  EXPECT_NE(svc.find_keys("b"), nullptr);
  EXPECT_NE(svc.find_keys("c"), nullptr);

  const auto s = runtime::stats();
  EXPECT_EQ(s.key_cache_misses, 3u);
  EXPECT_EQ(s.key_cache_hits, 1u);
  EXPECT_EQ(s.key_cache_evictions, 1u);

  // Re-requesting the evicted shape preprocesses again.
  EXPECT_NE(svc.keys_for("a", a.cs()), nullptr);
  EXPECT_EQ(runtime::stats().key_cache_misses, 4u);
}

TEST_F(RuntimeTest, BatchVerifySharesOnePairingProduct) {
  ThreadPool::instance().configure(2);
  ProverService svc(srs());

  constexpr std::size_t kProofs = 3;
  std::vector<gadgets::CircuitBuilder> builders;
  std::vector<plonk::Proof> proofs;
  std::vector<std::vector<Fr>> publics;
  for (std::size_t j = 0; j < kProofs; ++j) {
    builders.push_back(key_circuit(10 + j, 20 + j, 30 + j));
    ProofJob job;
    job.circuit_id = "pi_k";
    job.cs =
        std::make_shared<const plonk::ConstraintSystem>(builders[j].cs());
    job.witness = builders[j].witness();
    job.rng = crypto::Drbg(7 + j);
    const auto proof = svc.prove(std::move(job));
    ASSERT_TRUE(proof.has_value());
    proofs.push_back(*proof);
    publics.push_back(
        builders[j].cs().extract_public_inputs(builders[j].witness()));
  }
  const auto keys = svc.find_keys("pi_k");
  ASSERT_NE(keys, nullptr);

  std::vector<plonk::BatchEntry> entries;
  for (std::size_t j = 0; j < kProofs; ++j) {
    entries.push_back({&keys->vk, &publics[j], &proofs[j]});
  }
  EXPECT_TRUE(ProverService::batch_verify(entries));
  EXPECT_TRUE(ProverService::batch_verify({}));  // empty batch is vacuous

  // One corrupted statement fails the batch verdict — but only THAT
  // entry, attributed by fold bisection; the others stay valid.
  std::vector<Fr> tampered = publics[1];
  tampered[0] += Fr::one();
  entries[1].public_inputs = &tampered;
  EXPECT_FALSE(ProverService::batch_verify(entries));
  const auto before = runtime::stats();
  const auto res = ProverService::batch_verify_attributed(entries);
  EXPECT_FALSE(res.all_ok());
  EXPECT_EQ(res.invalid_count(), 1u);
  ASSERT_EQ(res.ok.size(), kProofs);
  EXPECT_TRUE(res.ok[0]);
  EXPECT_FALSE(res.ok[1]);
  EXPECT_TRUE(res.ok[2]);
  const auto after = runtime::stats();
  EXPECT_GT(after.batch_fold_checks, before.batch_fold_checks);
  EXPECT_EQ(after.batch_entries_folded, before.batch_entries_folded + kProofs);
  EXPECT_EQ(after.batch_invalid_attributed,
            before.batch_invalid_attributed + 1);
  EXPECT_EQ(after.proofs_verified, before.proofs_verified + kProofs);
  entries[1].public_inputs = &publics[1];

  // One corrupted proof: same attribution story.
  plonk::Proof bad = proofs[2];
  bad.eval_a += Fr::one();
  entries[2].proof = &bad;
  EXPECT_FALSE(ProverService::batch_verify(entries));
  const auto res2 = ProverService::batch_verify_attributed(entries);
  EXPECT_TRUE(res2.ok[0]);
  EXPECT_TRUE(res2.ok[1]);
  EXPECT_FALSE(res2.ok[2]);
}

}  // namespace
