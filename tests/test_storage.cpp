#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "crypto/rng.hpp"
#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "storage/storage.hpp"

namespace zkdet::storage {
namespace {

using ff::Fr;

Blob make_blob(std::initializer_list<std::uint8_t> bytes) { return Blob(bytes); }

TEST(Cid, ContentAddressing) {
  const Blob a = make_blob({1, 2, 3});
  const Blob b = make_blob({1, 2, 4});
  EXPECT_EQ(Cid::of(a), Cid::of(a));
  EXPECT_NE(Cid::of(a), Cid::of(b));
  EXPECT_EQ(Cid::of(a).to_string().substr(0, 4), "cid:");
}

TEST(Cid, FieldImageStable) {
  const Cid c = Cid::of(make_blob({9, 9}));
  EXPECT_EQ(c.as_field(), c.as_field());
  EXPECT_FALSE(c.as_field().is_zero());
}

TEST(StorageNetwork, PutGetRoundtrip) {
  StorageNetwork net(4, 2);
  const Blob blob = make_blob({10, 20, 30});
  const Cid cid = net.put(blob);
  const auto got = net.get(cid);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, blob);
}

TEST(StorageNetwork, MissingCidReturnsNothing) {
  StorageNetwork net(4, 2);
  const Cid cid = Cid::of(make_blob({1}));
  EXPECT_FALSE(net.get(cid).has_value());
}

TEST(StorageNetwork, ReplicationSurvivesNodeLoss) {
  StorageNetwork net(4, 2);
  const Blob blob = make_blob({42});
  const Cid cid = net.put(blob);
  // erase from one node; a replica must still serve it
  std::size_t erased = 0;
  for (std::size_t i = 0; i < net.num_nodes() && erased == 0; ++i) {
    if (net.node(i).erase(cid)) erased = 1;
  }
  EXPECT_EQ(erased, 1u);
  EXPECT_TRUE(net.get(cid).has_value());
}

TEST(StorageNetwork, TamperedCopyDetectedAndSkipped) {
  StorageNetwork net(4, 2);
  const Blob blob = make_blob({1, 2, 3, 4});
  const Cid cid = net.put(blob);
  // corrupt every copy
  std::size_t corrupted = 0;
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    if (net.node(i).corrupt(cid)) ++corrupted;
  }
  EXPECT_GE(corrupted, 1u);
  EXPECT_FALSE(net.get(cid).has_value());       // all copies rejected
  EXPECT_GE(net.tamper_detections(), corrupted);  // and detected
}

TEST(StorageNetwork, PartialTamperStillServes) {
  StorageNetwork net(6, 3);
  const Blob blob = make_blob({7, 7, 7});
  const Cid cid = net.put(blob);
  // corrupt exactly one copy
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    if (net.node(i).corrupt(cid)) break;
  }
  const auto got = net.get(cid);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, blob);
}

TEST(StorageNetwork, UnpinRemovesEverywhere) {
  StorageNetwork net(4, 4);
  const Cid cid = net.put(make_blob({5}));
  EXPECT_TRUE(net.get(cid).has_value());
  net.unpin(cid);
  EXPECT_FALSE(net.get(cid).has_value());
}

TEST(StorageNetwork, IdenticalContentDeduplicates) {
  StorageNetwork net(4, 2);
  const Cid c1 = net.put(make_blob({1, 2}));
  const Cid c2 = net.put(make_blob({1, 2}));
  EXPECT_EQ(c1, c2);
}

TEST(StorageNetwork, GetOverwritesCorruptReplicaWithGoodCopy) {
  StorageNetwork net(6, 3);
  const Blob blob = make_blob({8, 8, 8, 8});
  const Cid cid = net.put(blob);
  std::size_t bad = net.num_nodes();
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    if (net.node(i).corrupt(cid)) {
      bad = i;
      break;
    }
  }
  ASSERT_LT(bad, net.num_nodes());
  ASSERT_NE(net.node(bad).fetch(cid), blob);  // really corrupted

  const auto got = net.get(cid);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, blob);
  // Self-healing: the corrupt replica was overwritten in place with the
  // verified copy, not merely skipped.
  EXPECT_EQ(net.node(bad).fetch(cid), blob);
  EXPECT_GE(net.repairs(), 1u);
  EXPECT_GE(net.tamper_detections(), 1u);
}

TEST(StorageNetwork, AllReplicasCorruptedIsUnrecoverable) {
  StorageNetwork net(4, 2);
  const Blob blob = make_blob({3, 1, 4, 1, 5});
  const Cid cid = net.put(blob);
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    net.node(i).corrupt(cid);
  }
  // No intact copy anywhere: get() must refuse to return corrupt bytes,
  // and a scrub reports the CID as unrecoverable rather than "fixing" it.
  EXPECT_FALSE(net.get(cid).has_value());
  const auto report = net.scrub();
  EXPECT_EQ(report.unrecoverable, 1u);
  EXPECT_FALSE(net.get(cid).has_value());
}

TEST(StorageNetwork, ScrubRestoresFullReplication) {
  StorageNetwork net(6, 3);
  const Blob blob = make_blob({6, 6, 6});
  const Cid cid = net.put(blob);
  // Knock out one replica and corrupt another.
  std::size_t erased = 0, corrupted = 0;
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    if (net.node(i).holds(cid)) {
      if (erased == 0) {
        net.node(i).erase(cid);
        ++erased;
      } else if (corrupted == 0) {
        net.node(i).corrupt(cid);
        ++corrupted;
      }
    }
  }
  ASSERT_EQ(erased + corrupted, 2u);

  const auto report = net.scrub();
  EXPECT_EQ(report.checked, 1u);
  EXPECT_GE(report.repaired, 1u);
  EXPECT_EQ(report.unrecoverable, 0u);
  // Full replication restored, every held copy verifies.
  std::size_t good = 0;
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    if (const auto b = net.node(i).fetch(cid)) {
      EXPECT_EQ(Cid::of(*b), cid);
      ++good;
    }
  }
  EXPECT_GE(good, 3u);
}

TEST(StorageNetwork, RepeatedlyCorruptNodeIsQuarantined) {
  StorageNetwork net(4, 2);
  const Blob blob = make_blob({9, 9});
  const Cid cid = net.put(blob);
  std::size_t bad = net.num_nodes();
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    if (net.node(i).holds(cid)) {
      bad = i;
      break;
    }
  }
  ASSERT_LT(bad, net.num_nodes());

  // Each round: corrupt, get (detects + repairs). After kQuarantineAfter
  // corrupt serves the node is quarantined.
  for (std::uint64_t round = 0; round < StorageNetwork::kQuarantineAfter;
       ++round) {
    EXPECT_FALSE(net.node_quarantined(bad));
    ASSERT_TRUE(net.node(bad).corrupt(cid));
    ASSERT_TRUE(net.get(cid).has_value());
  }
  EXPECT_TRUE(net.node_quarantined(bad));
  EXPECT_EQ(net.quarantined_count(), 1u);
  // Quarantined nodes are excluded from new placements.
  const Cid fresh = net.put(make_blob({1, 2, 3, 4, 5}));
  EXPECT_FALSE(net.node(bad).holds(fresh));
  // Reads still work (digest-verified) and the data survives.
  EXPECT_TRUE(net.get(cid).has_value());
  // Operator reinstates the node after vetting it.
  net.reinstate(bad);
  EXPECT_FALSE(net.node_quarantined(bad));
  EXPECT_EQ(net.quarantined_count(), 0u);
}

TEST(StorageNetwork, PutUnderNodeFaultsStillReachesFullReplication) {
  fault::ScopedFaults faults;
  StorageNetwork net(6, 3);
  // First two placement writes fail; the fallback path must re-place
  // the replicas on healthy nodes so the blob still lands at 3 copies.
  fault::inject(fault::points::kStoragePutNode,
                fault::Schedule::times(2, 1));
  const Blob blob = make_blob({11, 22, 33});
  const Cid cid = net.put(blob);
  std::size_t copies = 0;
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    if (net.node(i).holds(cid)) ++copies;
  }
  EXPECT_EQ(copies, 3u);
  EXPECT_EQ(net.get(cid), blob);
}

// Exercised under -DZKDET_SANITIZE=thread in CI: concurrent put/get/
// scrub on one network, plus monitoring reads of the atomic counters.
TEST(StorageNetwork, ConcurrentPutGetScrubIsSafe) {
  StorageNetwork net(6, 2);
  std::vector<Cid> seeded;
  for (std::uint8_t i = 0; i < 8; ++i) {
    seeded.push_back(net.put(make_blob({i, 1, 2})));
  }
  std::atomic<bool> ok{true};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        const auto& cid = seeded[static_cast<std::size_t>((t * 50 + i) %
                                                          seeded.size())];
        const auto got = net.get(cid);
        if (!got.has_value()) ok.store(false);
        Blob fresh{static_cast<std::uint8_t>(t), static_cast<std::uint8_t>(i),
                   7};
        const Cid c = net.put(fresh);
        if (net.get(c) != fresh) ok.store(false);
        if (i % 16 == 0) {
          net.scrub();
          (void)net.tamper_detections();
          (void)net.repairs();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_TRUE(ok.load());
}

TEST(DatasetSerialization, Roundtrip) {
  crypto::Drbg rng(1);
  std::vector<Fr> data;
  for (int i = 0; i < 10; ++i) data.push_back(rng.random_fr());
  const Blob blob = dataset_to_blob(data);
  EXPECT_EQ(blob.size(), 320u);
  const auto back = blob_to_dataset(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(DatasetSerialization, RejectsBadLength) {
  EXPECT_FALSE(blob_to_dataset(make_blob({1, 2, 3})).has_value());
}

TEST(DatasetSerialization, RejectsNonCanonical) {
  // 32 bytes of 0xFF is >= r: not a canonical field element
  Blob blob(32, 0xFF);
  EXPECT_FALSE(blob_to_dataset(blob).has_value());
}

TEST(DatasetSerialization, EmptyDataset) {
  const Blob blob = dataset_to_blob({});
  EXPECT_TRUE(blob.empty());
  const auto back = blob_to_dataset(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

}  // namespace
}  // namespace zkdet::storage
