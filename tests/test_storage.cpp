#include <gtest/gtest.h>

#include "crypto/rng.hpp"
#include "storage/storage.hpp"

namespace zkdet::storage {
namespace {

using ff::Fr;

Blob make_blob(std::initializer_list<std::uint8_t> bytes) { return Blob(bytes); }

TEST(Cid, ContentAddressing) {
  const Blob a = make_blob({1, 2, 3});
  const Blob b = make_blob({1, 2, 4});
  EXPECT_EQ(Cid::of(a), Cid::of(a));
  EXPECT_NE(Cid::of(a), Cid::of(b));
  EXPECT_EQ(Cid::of(a).to_string().substr(0, 4), "cid:");
}

TEST(Cid, FieldImageStable) {
  const Cid c = Cid::of(make_blob({9, 9}));
  EXPECT_EQ(c.as_field(), c.as_field());
  EXPECT_FALSE(c.as_field().is_zero());
}

TEST(StorageNetwork, PutGetRoundtrip) {
  StorageNetwork net(4, 2);
  const Blob blob = make_blob({10, 20, 30});
  const Cid cid = net.put(blob);
  const auto got = net.get(cid);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, blob);
}

TEST(StorageNetwork, MissingCidReturnsNothing) {
  StorageNetwork net(4, 2);
  const Cid cid = Cid::of(make_blob({1}));
  EXPECT_FALSE(net.get(cid).has_value());
}

TEST(StorageNetwork, ReplicationSurvivesNodeLoss) {
  StorageNetwork net(4, 2);
  const Blob blob = make_blob({42});
  const Cid cid = net.put(blob);
  // erase from one node; a replica must still serve it
  std::size_t erased = 0;
  for (std::size_t i = 0; i < net.num_nodes() && erased == 0; ++i) {
    if (net.node(i).erase(cid)) erased = 1;
  }
  EXPECT_EQ(erased, 1u);
  EXPECT_TRUE(net.get(cid).has_value());
}

TEST(StorageNetwork, TamperedCopyDetectedAndSkipped) {
  StorageNetwork net(4, 2);
  const Blob blob = make_blob({1, 2, 3, 4});
  const Cid cid = net.put(blob);
  // corrupt every copy
  std::size_t corrupted = 0;
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    if (net.node(i).corrupt(cid)) ++corrupted;
  }
  EXPECT_GE(corrupted, 1u);
  EXPECT_FALSE(net.get(cid).has_value());       // all copies rejected
  EXPECT_GE(net.tamper_detections(), corrupted);  // and detected
}

TEST(StorageNetwork, PartialTamperStillServes) {
  StorageNetwork net(6, 3);
  const Blob blob = make_blob({7, 7, 7});
  const Cid cid = net.put(blob);
  // corrupt exactly one copy
  for (std::size_t i = 0; i < net.num_nodes(); ++i) {
    if (net.node(i).corrupt(cid)) break;
  }
  const auto got = net.get(cid);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, blob);
}

TEST(StorageNetwork, UnpinRemovesEverywhere) {
  StorageNetwork net(4, 4);
  const Cid cid = net.put(make_blob({5}));
  EXPECT_TRUE(net.get(cid).has_value());
  net.unpin(cid);
  EXPECT_FALSE(net.get(cid).has_value());
}

TEST(StorageNetwork, IdenticalContentDeduplicates) {
  StorageNetwork net(4, 2);
  const Cid c1 = net.put(make_blob({1, 2}));
  const Cid c2 = net.put(make_blob({1, 2}));
  EXPECT_EQ(c1, c2);
}

TEST(DatasetSerialization, Roundtrip) {
  crypto::Drbg rng(1);
  std::vector<Fr> data;
  for (int i = 0; i < 10; ++i) data.push_back(rng.random_fr());
  const Blob blob = dataset_to_blob(data);
  EXPECT_EQ(blob.size(), 320u);
  const auto back = blob_to_dataset(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(DatasetSerialization, RejectsBadLength) {
  EXPECT_FALSE(blob_to_dataset(make_blob({1, 2, 3})).has_value());
}

TEST(DatasetSerialization, RejectsNonCanonical) {
  // 32 bytes of 0xFF is >= r: not a canonical field element
  Blob blob(32, 0xFF);
  EXPECT_FALSE(blob_to_dataset(blob).has_value());
}

TEST(DatasetSerialization, EmptyDataset) {
  const Blob blob = dataset_to_blob({});
  EXPECT_TRUE(blob.empty());
  const auto back = blob_to_dataset(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

}  // namespace
}  // namespace zkdet::storage
