// ZkdetSystem deployment and key-cache behavior.
#include <gtest/gtest.h>

#include "core/circuits.hpp"
#include "core/system.hpp"

namespace zkdet::core {
namespace {

using ff::Fr;

struct SystemFixture : ::testing::Test {
  static ZkdetSystem& sys() {
    static ZkdetSystem s(1 << 12, 99);
    return s;
  }
};

TEST_F(SystemFixture, DeploysAllContracts) {
  EXPECT_EQ(sys().nft().name(), "DataNFT");
  EXPECT_EQ(sys().auction().name(), "ClockAuction");
  EXPECT_EQ(sys().arbiter().name(), "KeySecureArbiter");
  EXPECT_EQ(sys().zkcp_arbiter().name(), "ZkcpArbiter");
  EXPECT_EQ(sys().key_verifier().name(), "PlonkVerifier(pi_k)");
  // deployments are recorded as blocks
  EXPECT_GE(sys().chain().blocks().size(), 6u);
  EXPECT_TRUE(sys().chain().validate_chain());
}

TEST_F(SystemFixture, PiKShapePreprocessedAtBoot) {
  // The key circuit's keys exist without anyone proving yet.
  EXPECT_NE(sys().find_keys("pi_k"), nullptr);
  EXPECT_EQ(sys().find_keys("nonexistent-shape"), nullptr);
}

TEST_F(SystemFixture, KeyCacheReturnsSameInstance) {
  gadgets::CircuitBuilder a =
      build_key_circuit(Fr::one(), Fr::from_u64(2), Fr::from_u64(3));
  const auto& k1 = sys().keys_for("pi_k", a.cs());
  const auto& k2 = sys().keys_for("pi_k", a.cs());
  EXPECT_EQ(&k1, &k2);  // cached, not re-preprocessed
}

TEST_F(SystemFixture, OversizedCircuitThrows) {
  gadgets::CircuitBuilder bld;
  gadgets::Wire x = bld.add_witness(Fr::one());
  for (int i = 0; i < 5000; ++i) x = bld.add_constant(x, Fr::one());
  EXPECT_THROW(sys().keys_for("too-big", bld.cs()), std::runtime_error);
}

TEST_F(SystemFixture, SrsSupportsStatedBound) {
  EXPECT_GE(sys().srs().max_degree(), (1u << 12) + 8u);
}

TEST_F(SystemFixture, VerifierVkMatchesCachedKeys) {
  const auto* keys = sys().find_keys("pi_k");
  ASSERT_NE(keys, nullptr);
  EXPECT_EQ(sys().key_verifier().vk().n, keys->vk.n);
  EXPECT_EQ(sys().key_verifier().vk().ell, keys->vk.ell);
}

}  // namespace
}  // namespace zkdet::core
