// ZkdetSystem deployment, key-cache behavior, and arbiter sharding.
#include <gtest/gtest.h>

#include "core/circuits.hpp"
#include "core/exchange.hpp"
#include "core/system.hpp"

namespace zkdet::core {
namespace {

using crypto::Drbg;
using crypto::KeyPair;
using ff::Fr;

struct SystemFixture : ::testing::Test {
  static ZkdetSystem& sys() {
    static ZkdetSystem s(1 << 12, 99);
    return s;
  }
};

TEST_F(SystemFixture, DeploysAllContracts) {
  EXPECT_EQ(sys().nft().name(), "DataNFT");
  EXPECT_EQ(sys().auction().name(), "ClockAuction");
  EXPECT_EQ(sys().arbiter().name(), "KeySecureArbiter");
  EXPECT_EQ(sys().zkcp_arbiter().name(), "ZkcpArbiter");
  EXPECT_EQ(sys().key_verifier().name(), "PlonkVerifier(pi_k)");
  // deployments are recorded as blocks
  EXPECT_GE(sys().chain().blocks().size(), 6u);
  EXPECT_TRUE(sys().chain().validate_chain());
}

TEST_F(SystemFixture, PiKShapePreprocessedAtBoot) {
  // The key circuit's keys exist without anyone proving yet.
  EXPECT_NE(sys().find_keys("pi_k"), nullptr);
  EXPECT_EQ(sys().find_keys("nonexistent-shape"), nullptr);
}

TEST_F(SystemFixture, KeyCacheReturnsSameInstance) {
  gadgets::CircuitBuilder a =
      build_key_circuit(Fr::one(), Fr::from_u64(2), Fr::from_u64(3));
  const auto& k1 = sys().keys_for("pi_k", a.cs());
  const auto& k2 = sys().keys_for("pi_k", a.cs());
  EXPECT_EQ(&k1, &k2);  // cached, not re-preprocessed
}

TEST_F(SystemFixture, OversizedCircuitThrows) {
  gadgets::CircuitBuilder bld;
  gadgets::Wire x = bld.add_witness(Fr::one());
  for (int i = 0; i < 5000; ++i) x = bld.add_constant(x, Fr::one());
  EXPECT_THROW(sys().keys_for("too-big", bld.cs()), std::runtime_error);
}

TEST_F(SystemFixture, SrsSupportsStatedBound) {
  EXPECT_GE(sys().srs().max_degree(), (1u << 12) + 8u);
}

TEST_F(SystemFixture, VerifierVkMatchesCachedKeys) {
  const auto* keys = sys().find_keys("pi_k");
  ASSERT_NE(keys, nullptr);
  EXPECT_EQ(sys().key_verifier().vk().n, keys->vk.n);
  EXPECT_EQ(sys().key_verifier().vk().ell, keys->vk.ell);
}

// --- arbiter sharding + pooled exchange -------------------------------

struct ShardedFixture : ::testing::Test {
  static ZkdetSystem& sys() {
    static ZkdetSystem s(1 << 14, 77, /*data_dir=*/"", {},
                         /*arbiter_shards=*/2);
    return s;
  }
  static TransformationProtocol& tp() {
    static TransformationProtocol t(sys());
    return t;
  }
};

TEST_F(ShardedFixture, DeploysRequestedShardCount) {
  ASSERT_EQ(sys().arbiter_shards(), 2u);
  EXPECT_EQ(&sys().arbiter(), &sys().arbiter_shard(0));
  EXPECT_NE(&sys().arbiter_shard(0), &sys().arbiter_shard(1));
  EXPECT_TRUE(sys().chain().validate_chain());
}

// End-to-end pooled exchange across two shards: token ids route to
// different arbiters, exchange ids stay globally unique, and both
// exchanges settle through TxPool with the buyer recovering the data.
TEST_F(ShardedFixture, PooledExchangeSettlesAcrossShards) {
  Drbg rng("sharded-exchange", 5);
  const KeyPair seller = KeyPair::generate(rng);
  const KeyPair buyer = KeyPair::generate(rng);
  sys().chain().create_account(seller, 1'000'000);
  sys().chain().create_account(buyer, 1'000'000);
  KeySecureExchange ex(sys(), tp());

  std::vector<std::uint64_t> exchange_ids;
  for (int round = 0; round < 2; ++round) {
    auto asset = tp().publish(
        seller, {Fr::from_u64(100 + round), Fr::from_u64(200 + round)});
    ASSERT_TRUE(asset.has_value());
    auto offer = ex.make_offer(*asset, nullptr, "any");
    ASSERT_TRUE(offer.has_value());
    ASSERT_TRUE(ex.verify_offer(*offer));

    auto session = ex.lock_payment(buyer, *offer, /*amount=*/500,
                                   /*timeout_blocks=*/10);
    ASSERT_TRUE(session.has_value());
    const std::uint64_t id = session->exchange_id;
    exchange_ids.push_back(id);
    // The exchange lives on the shard that owns the token id, and ONLY
    // on that shard.
    auto& owner = sys().arbiter_for_token(asset->token_id);
    EXPECT_EQ(&owner, &sys().arbiter_for_exchange(id));
    ASSERT_TRUE(owner.exchange(id).has_value());
    auto& other =
        sys().arbiter_shard(1 - (asset->token_id % sys().arbiter_shards()));
    EXPECT_FALSE(other.exchange(id).has_value());
    // Cross-shard h_v lookup (crash-recovery path) finds it too.
    const auto by_hv = sys().find_exchange_by_hv(hash_key(session->k_v));
    ASSERT_TRUE(by_hv.has_value());
    EXPECT_EQ(by_hv->id, id);

    ASSERT_TRUE(ex.settle(seller, *asset, id, session->k_v));
    const auto data = ex.recover_data(*session);
    ASSERT_TRUE(data.has_value());
    EXPECT_EQ(*data, asset->plain);
  }
  // Globally unique ids on distinct shard progressions.
  ASSERT_EQ(exchange_ids.size(), 2u);
  EXPECT_NE(exchange_ids[0], exchange_ids[1]);
  EXPECT_NE(exchange_ids[0] % 2, exchange_ids[1] % 2);
  EXPECT_TRUE(sys().chain().validate_chain());
}

}  // namespace
}  // namespace zkdet::core
