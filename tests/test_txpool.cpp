// Transaction pipeline subsystem (src/txpool) tests.
//
// Covers the ISSUE 6 acceptance properties:
//   - mempool admission control: capacity, per-sender nonce ordering,
//     replay rejection, priority-based replacement;
//   - dependency-aware scheduling: conflicting access sets never share
//     a batch, non-conflicting txs seal as ONE multi-tx block;
//   - determinism: the same tx set, submitted in randomized orders and
//     executed serially or in parallel under worker counts {1, 2, N},
//     produces byte-identical blocks and byte-identical WAL files;
//   - fault injection: txpool.admit.full, txpool.exec.conflict-abort,
//     and txpool.seal.crash (kill at the seal boundary recovers to the
//     pre-batch tip, then the batch replays to the uninterrupted tip);
//   - enforcement: an undeclared access reverts deterministically;
//   - runtime::stats() pipeline counters.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "chain/chain.hpp"
#include "crypto/rng.hpp"
#include "crypto/schnorr.hpp"
#include "fault/fault.hpp"
#include "fault/points.hpp"
#include "ledger/io.hpp"
#include "ledger/ledger.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"
#include "txpool/txpool.hpp"

namespace zkdet::txpool {
namespace {

namespace fs = std::filesystem;
using chain::CallContext;
using chain::Chain;
using crypto::Drbg;
using crypto::KeyPair;
using ff::Fr;

struct TempDir {
  fs::path path;
  TempDir() {
    static std::atomic<int> counter{0};
    path = fs::temp_directory_path() /
           ("zkdet-txpool-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1)));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

// Concatenated bytes of every WAL segment, in segment order. Two runs
// that journal the same blocks must match byte-for-byte.
std::vector<std::uint8_t> wal_bytes(const fs::path& dir) {
  std::vector<fs::path> segments;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("wal-", 0) == 0) segments.push_back(e.path());
  }
  std::sort(segments.begin(), segments.end());
  std::vector<std::uint8_t> out;
  for (const auto& seg : segments) {
    std::ifstream in(seg, std::ios::binary);
    out.insert(out.end(), std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
  }
  return out;
}

class Counter : public chain::Contract {
 public:
  Counter() : Contract("Counter", 64) {}
  void add(CallContext& ctx, const std::string& key, std::uint64_t v) {
    const auto cur = store().get_u64(ctx, key);
    store().set_u64(ctx, key, cur.value_or(0) + v);
  }
};

constexpr std::size_t kActors = 4;

// A chain with `kActors` funded accounts, a Counter contract, and a
// TxPool over it.
struct World {
  Chain chain;
  std::optional<ledger::Ledger> ledger;  // after chain: detaches first
  std::vector<KeyPair> keys;
  std::vector<chain::Address> addrs;
  Counter* counter = nullptr;
  std::optional<TxPool> pool;

  explicit World(const std::string& dir = {}, Config cfg = {}) {
    if (!dir.empty()) ledger.emplace(chain, dir, ledger::Options{});
    Drbg rng("txpool-world", 99);
    for (std::size_t i = 0; i < kActors; ++i) {
      keys.push_back(KeyPair::generate(rng));
      addrs.push_back(chain.create_account(keys.back(), 1'000'000));
    }
    counter = &chain.deploy<Counter>(keys[0], nullptr);
    pool.emplace(chain, cfg);
  }

  // Intent: actor `who` bumps its own counter key (conflict-free across
  // actors thanks to per-actor key prefixes).
  TxIntent bump(std::size_t who, std::uint64_t nonce, std::uint64_t v,
                std::uint64_t priority = 0) {
    AccessSet access;
    access.write_contract(counter->address(), "k" + std::to_string(who));
    Counter* c = counter;
    const std::string key = "k" + std::to_string(who);
    return make_intent(
        keys[who], nonce, "bump a" + std::to_string(who),
        [c, key, v](CallContext& ctx) { c->add(ctx, key, v); },
        std::move(access), 0, {}, 30'000'000, priority);
  }
};

// ---------------------------------------------------------------------
// Mempool admission control
// ---------------------------------------------------------------------

TEST(TxpoolMempool, CapacityBoundsAdmission) {
  Config cfg;
  cfg.capacity = 2;
  World w({}, cfg);
  EXPECT_TRUE(w.pool->submit(w.bump(0, 0, 1)).accepted);
  EXPECT_TRUE(w.pool->submit(w.bump(1, 0, 1)).accepted);
  const auto full = w.pool->submit(w.bump(2, 0, 1));
  EXPECT_FALSE(full.accepted);
  EXPECT_NE(full.error.find("full"), std::string::npos);
  // Draining frees capacity.
  EXPECT_EQ(w.pool->drain(), 2u);
  EXPECT_TRUE(w.pool->submit(w.bump(2, 0, 1)).accepted);
}

TEST(TxpoolMempool, StaleNonceIsReplayRejected) {
  World w;
  // Consume nonce 0 for actor 0 through the pool.
  ASSERT_TRUE(w.pool->submit(w.bump(0, 0, 1)).accepted);
  EXPECT_EQ(w.pool->drain(), 1u);
  EXPECT_EQ(w.chain.account_nonce(w.addrs[0]), 1u);
  // Re-submitting nonce 0 is a replay: rejected at admission.
  const auto replay = w.pool->submit(w.bump(0, 0, 1));
  EXPECT_FALSE(replay.accepted);
  EXPECT_NE(replay.error.find("replay"), std::string::npos);
}

TEST(TxpoolMempool, ReplacementRequiresStrictlyHigherPriority) {
  World w;
  const auto first = w.pool->submit(w.bump(0, 0, /*v=*/1, /*priority=*/5));
  ASSERT_TRUE(first.accepted);
  // Same priority: underpriced.
  const auto same = w.pool->submit(w.bump(0, 0, /*v=*/2, /*priority=*/5));
  EXPECT_FALSE(same.accepted);
  EXPECT_NE(same.error.find("underpriced"), std::string::npos);
  // Higher priority wins; the replaced ticket resolves as failed.
  const auto better = w.pool->submit(w.bump(0, 0, /*v=*/7, /*priority=*/6));
  ASSERT_TRUE(better.accepted);
  ASSERT_TRUE(first.ticket->done());
  EXPECT_FALSE(first.ticket->receipt.success);
  EXPECT_NE(first.ticket->receipt.error.find("replaced"), std::string::npos);
  EXPECT_EQ(w.pool->drain(), 1u);
  ASSERT_TRUE(better.ticket->done());
  EXPECT_TRUE(better.ticket->receipt.success);
  // The replacement's effect (not the original's) landed.
  EXPECT_EQ(w.counter->audit_store().peek("k0"), Fr::from_u64(7));
}

TEST(TxpoolMempool, NonceGapWaitsForPredecessor) {
  World w;
  const auto gapped = w.pool->submit(w.bump(0, /*nonce=*/1, 10));
  ASSERT_TRUE(gapped.accepted);
  // Nothing schedulable: nonce 0 is missing.
  EXPECT_EQ(w.pool->seal_next_batch(), 0u);
  EXPECT_FALSE(gapped.ticket->done());
  // Filling the gap schedules both, in nonce order, in one batch.
  ASSERT_TRUE(w.pool->submit(w.bump(0, /*nonce=*/0, 1)).accepted);
  EXPECT_EQ(w.pool->drain(), 2u);
  EXPECT_TRUE(gapped.ticket->done());
  EXPECT_TRUE(gapped.ticket->receipt.success);
  EXPECT_EQ(w.counter->audit_store().peek("k0"), Fr::from_u64(11));
}

// ---------------------------------------------------------------------
// Nonce discipline at the chain layer (satellite: replay regression)
// ---------------------------------------------------------------------

TEST(TxpoolNonces, DirectCallsConsumeNoncesAndRecordThem) {
  World w;
  EXPECT_EQ(w.chain.account_nonce(w.addrs[0]), 0u);
  ASSERT_TRUE(
      w.chain.call(w.keys[0], "direct one", [](CallContext&) {}).success);
  ASSERT_TRUE(
      w.chain.call(w.keys[0], "direct two", [](CallContext&) {}).success);
  EXPECT_EQ(w.chain.account_nonce(w.addrs[0]), 2u);
  // The records carry the nonces (consensus-critical: hashed + WAL'd).
  const auto& blocks = w.chain.blocks();
  EXPECT_EQ(blocks[blocks.size() - 2].txs[0].nonce, 0u);
  EXPECT_EQ(blocks[blocks.size() - 1].txs[0].nonce, 1u);
}

TEST(TxpoolNonces, BatchRejectsReplayedAndDuplicateNonces) {
  World w;
  // Two txs from the same sender with the SAME nonce in one batch: the
  // first (canonical order) wins, the second is a replay.
  std::vector<chain::BatchTx> batch;
  for (int i = 0; i < 2; ++i) {
    const TxIntent in = w.bump(0, /*nonce=*/0, 1 + i);
    chain::BatchTx t;
    t.sender = in.sender;
    t.description = in.description;
    t.nonce = in.nonce;
    t.sig = in.sig;
    t.fn = in.fn;
    batch.push_back(std::move(t));
  }
  const auto receipts = w.chain.execute_batch(batch, /*parallel=*/false);
  EXPECT_TRUE(receipts[0].success);
  EXPECT_FALSE(receipts[1].success);
  EXPECT_NE(receipts[1].error.find("replay"), std::string::npos);
  EXPECT_EQ(w.chain.account_nonce(w.addrs[0]), 1u);
  // A forged signature (wrong nonce signed) never authenticates.
  TxIntent forged = w.bump(0, /*nonce=*/0, 1);
  forged.nonce = 1;  // claims nonce 1, signed for nonce 0
  chain::BatchTx t;
  t.sender = forged.sender;
  t.description = forged.description;
  t.nonce = forged.nonce;
  t.sig = forged.sig;
  t.fn = forged.fn;
  const auto r2 = w.chain.execute_batch({t}, false);
  EXPECT_FALSE(r2[0].success);
  EXPECT_NE(r2[0].error.find("signature"), std::string::npos);
}

// ---------------------------------------------------------------------
// Scheduling: conflicts and batching
// ---------------------------------------------------------------------

TEST(TxpoolScheduler, NonConflictingTxsSealAsOneBlock) {
  World w;
  const std::uint64_t h0 = w.chain.height();
  for (std::size_t a = 0; a < kActors; ++a) {
    ASSERT_TRUE(w.pool->submit(w.bump(a, 0, a + 1)).accepted);
  }
  EXPECT_EQ(w.pool->seal_next_batch(), kActors);
  EXPECT_EQ(w.chain.height(), h0 + 1);  // ONE block
  EXPECT_EQ(w.chain.blocks().back().txs.size(), kActors);
  EXPECT_TRUE(w.chain.validate_chain());
}

TEST(TxpoolScheduler, ConflictingAccessSetsSplitBatches) {
  World w;
  // Both actors declare a write to the SAME key prefix: they must not
  // share a batch.
  auto intent = [&](std::size_t who) {
    AccessSet access;
    access.write_contract(w.counter->address(), "shared");
    Counter* c = w.counter;
    return make_intent(w.keys[who], 0, "shared bump",
                       [c](CallContext& ctx) { c->add(ctx, "shared", 1); },
                       std::move(access));
  };
  const std::uint64_t h0 = w.chain.height();
  ASSERT_TRUE(w.pool->submit(intent(0)).accepted);
  ASSERT_TRUE(w.pool->submit(intent(1)).accepted);
  EXPECT_EQ(w.pool->seal_next_batch(), 1u);
  EXPECT_EQ(w.pool->seal_next_batch(), 1u);
  EXPECT_EQ(w.chain.height(), h0 + 2);  // two blocks
  EXPECT_EQ(w.counter->audit_store().peek("shared"), Fr::from_u64(2));
}

TEST(TxpoolScheduler, UndeclaredIntentSerializesAgainstEverything) {
  World w;
  ASSERT_TRUE(w.pool->submit(w.bump(0, 0, 1)).accepted);
  // Actor 1 submits with NO access set: conflicts with everything.
  Counter* c = w.counter;
  ASSERT_TRUE(w.pool
                  ->submit(make_intent(
                      w.keys[1], 0, "undeclared",
                      [c](CallContext& ctx) { c->add(ctx, "free", 1); }))
                  .accepted);
  ASSERT_TRUE(w.pool->submit(w.bump(2, 0, 1)).accepted);
  // Canonical order batches: the undeclared tx runs alone.
  std::vector<std::size_t> batch_sizes;
  for (std::size_t n = w.pool->seal_next_batch(); n != 0;
       n = w.pool->seal_next_batch()) {
    batch_sizes.push_back(n);
  }
  std::size_t total = 0;
  for (const std::size_t n : batch_sizes) total += n;
  EXPECT_EQ(total, 3u);
  EXPECT_GE(batch_sizes.size(), 2u);  // at least one split happened
  EXPECT_EQ(w.counter->audit_store().peek("free"), Fr::from_u64(1));
}

TEST(TxpoolScheduler, MaxBatchCapsBlockSize) {
  Config cfg;
  cfg.max_batch = 2;
  World w({}, cfg);
  for (std::size_t a = 0; a < kActors; ++a) {
    ASSERT_TRUE(w.pool->submit(w.bump(a, 0, 1)).accepted);
  }
  EXPECT_EQ(w.pool->seal_next_batch(), 2u);
  EXPECT_EQ(w.pool->seal_next_batch(), 2u);
  EXPECT_EQ(w.pool->seal_next_batch(), 0u);
}

// ---------------------------------------------------------------------
// Access enforcement
// ---------------------------------------------------------------------

TEST(TxpoolAccess, UndeclaredWriteRevertsDeterministically) {
  World w;
  // Declares only "k0" but writes "other": the executor must revert.
  AccessSet access;
  access.write_contract(w.counter->address(), "k0");
  Counter* c = w.counter;
  const auto res = w.pool->submit(make_intent(
      w.keys[0], 0, "out of bounds",
      [c](CallContext& ctx) { c->add(ctx, "other", 1); }, std::move(access)));
  ASSERT_TRUE(res.accepted);
  EXPECT_EQ(w.pool->drain(), 1u);
  ASSERT_TRUE(res.ticket->done());
  EXPECT_FALSE(res.ticket->receipt.success);
  EXPECT_NE(res.ticket->receipt.error.find("undeclared"), std::string::npos);
  EXPECT_EQ(w.counter->audit_store().peek("other"), std::nullopt);
  // The failed tx still consumed its nonce (it is in the block).
  EXPECT_EQ(w.chain.account_nonce(w.addrs[0]), 1u);
}

TEST(TxpoolAccess, UndeclaredBalanceTouchReverts) {
  World w;
  AccessSet access;
  access.write_contract(w.counter->address(), "k0");
  const chain::Address to = w.addrs[1];
  const chain::Address from = w.addrs[0];
  const auto res = w.pool->submit(make_intent(
      w.keys[0], 0, "sneaky transfer",
      [to, from](CallContext& ctx) { ctx.chain().transfer(from, to, 5); },
      std::move(access)));
  ASSERT_TRUE(res.accepted);
  const std::uint64_t before = w.chain.balance(to);
  EXPECT_EQ(w.pool->drain(), 1u);
  EXPECT_FALSE(res.ticket->receipt.success);
  EXPECT_NE(res.ticket->receipt.error.find("undeclared balance"),
            std::string::npos);
  EXPECT_EQ(w.chain.balance(to), before);
}

// ---------------------------------------------------------------------
// Determinism: orders x worker counts x serial/parallel
// ---------------------------------------------------------------------

// A mixed workload: per-actor counter bumps (conflict-free), a shared
// hotspot (conflicting), balance transfers, and a deliberate
// out-of-policy tx that reverts. Returns intents in a fixed canonical
// construction order; the caller shuffles submission order.
std::vector<TxIntent> mixed_workload(World& w) {
  std::vector<TxIntent> intents;
  Counter* c = w.counter;
  for (std::size_t a = 0; a < kActors; ++a) {
    for (std::uint64_t n = 0; n < 3; ++n) {
      if (a == 1 && n == 1) {
        // Hotspot: every actor-1 mid-nonce writes the shared key.
        AccessSet access;
        access.write_contract(c->address(), "shared");
        intents.push_back(make_intent(
            w.keys[a], n, "hot a" + std::to_string(a),
            [c](CallContext& ctx) { c->add(ctx, "shared", 3); },
            std::move(access)));
      } else if (a == 2 && n == 2) {
        // Value transfer with declared balance touches.
        AccessSet access;
        access.touch_account(w.addrs[2]).touch_account(w.addrs[3]);
        intents.push_back(make_intent(
            w.keys[a], n, "pay a2->a3", [](CallContext&) {},
            std::move(access), /*value=*/250, /*pay_to=*/w.addrs[3]));
      } else if (a == 3 && n == 1) {
        // Deterministic revert: undeclared write.
        AccessSet access;
        access.write_contract(c->address(), "k3");
        intents.push_back(make_intent(
            w.keys[a], n, "oob a3",
            [c](CallContext& ctx) { c->add(ctx, "elsewhere", 1); },
            std::move(access)));
      } else {
        intents.push_back(w.bump(a, n, 10 * a + n + 1));
      }
    }
  }
  return intents;
}

struct RunResult {
  std::array<std::uint8_t, 32> tip{};
  std::vector<std::uint8_t> wal;
};

RunResult run_workload(std::uint64_t shuffle_seed, bool parallel) {
  TempDir dir;
  Config cfg;
  cfg.parallel = parallel;
  World w(dir.str(), cfg);
  auto intents = mixed_workload(w);
  // Shuffle submission order with a deterministic Fisher-Yates.
  Drbg rng("txpool-shuffle", shuffle_seed);
  for (std::size_t i = intents.size(); i > 1; --i) {
    std::swap(intents[i - 1], intents[rng() % i]);
  }
  for (auto& in : intents) {
    EXPECT_TRUE(w.pool->submit(std::move(in)).accepted) << "submit failed";
  }
  w.pool->drain();
  EXPECT_TRUE(w.chain.validate_chain());
  RunResult out;
  out.tip = w.chain.blocks().back().hash;
  w.ledger->sync();
  out.wal = wal_bytes(dir.path);
  return out;
}

TEST(TxpoolDeterminism, OrdersAndWorkerCountsAreByteIdentical) {
  auto& tp = runtime::ThreadPool::instance();
  const std::size_t hw = tp.concurrency();
  std::optional<RunResult> want;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, hw}) {
    tp.configure(workers);
    for (const std::uint64_t seed : {11u, 22u, 33u}) {
      for (const bool parallel : {false, true}) {
        SCOPED_TRACE("workers=" + std::to_string(workers) + " seed=" +
                     std::to_string(seed) + " parallel=" +
                     std::to_string(parallel));
        RunResult got = run_workload(seed, parallel);
        if (!want) {
          want = std::move(got);
          ASSERT_FALSE(want->wal.empty());
          continue;
        }
        EXPECT_EQ(got.tip, want->tip) << "block hash diverged";
        EXPECT_EQ(got.wal, want->wal) << "WAL bytes diverged";
      }
    }
  }
  tp.configure(hw);
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

TEST(TxpoolFaults, AdmitFullFailPointForcesRejection) {
  World w;
  const fault::ScopedFaults guard;
  fault::inject(fault::points::kTxpoolAdmitFull, fault::Schedule::once());
  const auto res = w.pool->submit(w.bump(0, 0, 1));
  EXPECT_FALSE(res.accepted);
  EXPECT_NE(res.error.find("full"), std::string::npos);
  // The fault is one-shot: the retry is admitted.
  const auto retry = w.pool->submit(w.bump(0, 0, 1));
  EXPECT_TRUE(retry.accepted);
  EXPECT_EQ(w.pool->drain(), 1u);
  EXPECT_TRUE(retry.ticket->receipt.success);
}

TEST(TxpoolFaults, ConflictAbortIncludesTxAsFailed) {
  World w;
  runtime::reset_stats();
  const fault::ScopedFaults guard;
  fault::inject(fault::points::kTxpoolExecConflictAbort,
                fault::Schedule::once());
  const auto res = w.pool->submit(w.bump(0, 0, 5));
  ASSERT_TRUE(res.accepted);
  EXPECT_EQ(w.pool->drain(), 1u);
  ASSERT_TRUE(res.ticket->done());
  EXPECT_FALSE(res.ticket->receipt.success);
  EXPECT_NE(res.ticket->receipt.error.find("conflict abort"),
            std::string::npos);
  // Effects discarded, nonce consumed, tx journaled as failed.
  EXPECT_EQ(w.counter->audit_store().peek("k0"), std::nullopt);
  EXPECT_EQ(w.chain.account_nonce(w.addrs[0]), 1u);
  EXPECT_EQ(runtime::stats().txpool_conflict_aborts, 1u);
  // The pipeline keeps going.
  const auto next = w.pool->submit(w.bump(0, 1, 5));
  ASSERT_TRUE(next.accepted);
  EXPECT_EQ(w.pool->drain(), 1u);
  EXPECT_TRUE(next.ticket->receipt.success);
  EXPECT_EQ(w.counter->audit_store().peek("k0"), Fr::from_u64(5));
}

// Kill-at-seal: the crash fires after execution but before ANY commit,
// so a reopen lands exactly on the pre-batch tip; resubmitting the
// batch converges to the uninterrupted run's tip.
TEST(TxpoolFaults, SealCrashRecoversToPreBatchTip) {
  // Uninterrupted reference run.
  std::array<std::uint8_t, 32> want_tip{};
  {
    TempDir ref;
    World w(ref.str());
    for (std::size_t a = 0; a < kActors; ++a) {
      ASSERT_TRUE(w.pool->submit(w.bump(a, 0, a + 7)).accepted);
    }
    EXPECT_EQ(w.pool->drain(), kActors);
    want_tip = w.chain.blocks().back().hash;
  }

  TempDir dir;
  std::array<std::uint8_t, 32> pre_batch_tip{};
  {
    World w(dir.str());
    pre_batch_tip = w.chain.blocks().back().hash;
    for (std::size_t a = 0; a < kActors; ++a) {
      ASSERT_TRUE(w.pool->submit(w.bump(a, 0, a + 7)).accepted);
    }
    const fault::ScopedFaults guard;
    fault::inject(fault::points::kTxpoolSealCrash, fault::Schedule::once());
    EXPECT_THROW(w.pool->seal_next_batch(), ledger::CrashInjected);
    // Nothing committed in-memory either: the batch died pre-commit.
    EXPECT_EQ(w.chain.blocks().back().hash, pre_batch_tip);
    EXPECT_EQ(w.chain.account_nonce(w.addrs[0]), 0u);
  }
  // "Reboot": reopen the directory, verify the pre-batch tip, rerun.
  {
    World w(dir.str());
    EXPECT_TRUE(w.chain.validate_chain());
    ASSERT_EQ(w.chain.blocks().back().hash, pre_batch_tip);
    for (std::size_t a = 0; a < kActors; ++a) {
      ASSERT_TRUE(w.pool->submit(w.bump(a, 0, a + 7)).accepted);
    }
    EXPECT_EQ(w.pool->drain(), kActors);
    EXPECT_EQ(w.chain.blocks().back().hash, want_tip)
        << "replayed batch diverged from the uninterrupted run";
  }
}

// Ledger fail-points during pooled sealing: the WAL append for a
// multi-tx block crashes mid-write; reopen must recover a valid prefix
// and the resubmitted batch must converge.
TEST(TxpoolFaults, LedgerCrashDuringPooledSealRecovers) {
  for (const char* point :
       {fault::points::kLedgerWalAppendTorn, fault::points::kLedgerFsync}) {
    SCOPED_TRACE(point);
    TempDir dir;
    std::array<std::uint8_t, 32> pre_batch_tip{};
    {
      World w(dir.str());
      pre_batch_tip = w.chain.blocks().back().hash;
      for (std::size_t a = 0; a < kActors; ++a) {
        ASSERT_TRUE(w.pool->submit(w.bump(a, 0, 3)).accepted);
      }
      const fault::ScopedFaults guard;
      fault::inject(point, fault::Schedule::once());
      bool crashed = false;
      try {
        w.pool->seal_next_batch();
      } catch (const ledger::CrashInjected&) {
        crashed = true;
      } catch (const ledger::IoError&) {
        crashed = true;
      }
      EXPECT_TRUE(crashed) << "fail-point never fired";
    }
    {
      World w(dir.str());
      EXPECT_TRUE(w.chain.validate_chain());
      // The block either landed fully or not at all (torn tail cut).
      const bool landed = w.chain.blocks().back().hash != pre_batch_tip;
      const std::uint64_t next = w.chain.account_nonce(w.addrs[0]);
      EXPECT_EQ(next, landed ? 1u : 0u);
      for (std::size_t a = 0; a < kActors; ++a) {
        ASSERT_TRUE(w.pool->submit(w.bump(a, next, 3)).accepted);
      }
      EXPECT_EQ(w.pool->drain(), kActors);
      EXPECT_TRUE(w.chain.validate_chain());
    }
  }
}

// ---------------------------------------------------------------------
// Pipeline stats
// ---------------------------------------------------------------------

TEST(TxpoolStats, CountersTrackPipelineActivity) {
  World w;
  runtime::reset_stats();
  for (std::size_t a = 0; a < kActors; ++a) {
    ASSERT_TRUE(w.pool->submit(w.bump(a, 0, 1)).accepted);
  }
  const auto mid = runtime::stats();
  EXPECT_EQ(mid.txpool_submitted, kActors);
  EXPECT_EQ(mid.txpool_queue_depth, kActors);
  EXPECT_EQ(w.pool->drain(), kActors);
  const auto s = runtime::stats();
  EXPECT_EQ(s.txpool_queue_depth, 0u);
  EXPECT_EQ(s.txpool_batches_sealed, 1u);
  EXPECT_EQ(s.txpool_txs_executed, kActors);
  EXPECT_EQ(s.txpool_rejected, 0u);
}

// ---------------------------------------------------------------------
// Synchronous pool-routed calls
// ---------------------------------------------------------------------

TEST(TxpoolCall, SynchronousCallAssignsNoncesAndResolves) {
  World w;
  Counter* c = w.counter;
  for (int i = 0; i < 3; ++i) {
    const auto r = w.pool->call(
        w.keys[0], "sync " + std::to_string(i),
        [c](CallContext& ctx) { c->add(ctx, "sync", 2); });
    EXPECT_TRUE(r.success) << r.error;
  }
  EXPECT_EQ(w.chain.account_nonce(w.addrs[0]), 3u);
  EXPECT_EQ(c->audit_store().peek("sync"), Fr::from_u64(6));
}

TEST(TxpoolCall, MixedPoolAndDirectCallsShareNonceStream) {
  World w;
  ASSERT_TRUE(
      w.chain.call(w.keys[0], "direct", [](CallContext&) {}).success);
  const auto r = w.pool->call(w.keys[0], "pooled", [](CallContext&) {});
  EXPECT_TRUE(r.success) << r.error;
  ASSERT_TRUE(
      w.chain.call(w.keys[0], "direct again", [](CallContext&) {}).success);
  EXPECT_EQ(w.chain.account_nonce(w.addrs[0]), 3u);
  EXPECT_TRUE(w.chain.validate_chain());
}

// Regression test for the nonce-map data race found by the lock
// annotation pass (ISSUE 7): TxPool::submit() admission-checks
// Chain::account_nonce() from producer threads while the pump thread's
// execute_batch commits new nonces — the map had no lock, so the read
// and the stage-4 write raced. Producers and the sealing pump now run
// flat out against each other; the kChain mutex makes every
// interleaving safe, and the TSan CI stage runs this test under
// -fsanitize=thread (the suite is in the tsan focus filter).
// Assertions are interleaving-independent: every ticket resolves
// successfully and per-actor state is exact.
TEST(TxpoolCall, ConcurrentSubmittersRaceTheSealingPump) {
  constexpr std::uint64_t kPerActor = 8;
  constexpr std::size_t kTotal = kActors * kPerActor;
  World w;
  // Slots are disjoint per producer, so the vector itself is race-free.
  std::vector<TicketPtr> tickets(kTotal);
  std::atomic<std::size_t> submitted{0};
  std::vector<std::thread> producers;
  producers.reserve(kActors);
  for (std::size_t a = 0; a < kActors; ++a) {
    producers.emplace_back([&w, &tickets, &submitted, a] {
      for (std::uint64_t n = 0; n < kPerActor; ++n) {
        auto res = w.pool->submit(w.bump(a, n, 1));
        EXPECT_TRUE(res.accepted) << res.error;
        if (res.accepted) tickets[a * kPerActor + n] = res.ticket;
        submitted.fetch_add(1, std::memory_order_release);
      }
    });
  }
  // Pump while the producers are still submitting: this concurrency is
  // the point of the test.
  while (submitted.load(std::memory_order_acquire) < kTotal ||
         w.pool->pending() > 0) {
    w.pool->seal_next_batch();
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(w.pool->drain(), 0u);

  for (const auto& t : tickets) {
    ASSERT_TRUE(t != nullptr);
    ASSERT_TRUE(t->done());
    EXPECT_TRUE(t->receipt.success) << t->receipt.error;
  }
  for (std::size_t a = 0; a < kActors; ++a) {
    EXPECT_EQ(w.chain.account_nonce(w.addrs[a]), kPerActor);
    EXPECT_EQ(w.counter->audit_store().peek("k" + std::to_string(a)),
              Fr::from_u64(kPerActor));
  }
  EXPECT_TRUE(w.chain.validate_chain());
}

}  // namespace
}  // namespace zkdet::txpool
