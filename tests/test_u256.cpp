#include "ff/u256.hpp"

#include <gtest/gtest.h>

#include <random>

namespace zkdet::ff {
namespace {

TEST(U256, ZeroAndComparisons) {
  U256 zero{};
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.bit_length(), 0u);
  U256 one{1};
  EXPECT_FALSE(one.is_zero());
  EXPECT_TRUE(u256_less(zero, one));
  EXPECT_FALSE(u256_less(one, one));
  EXPECT_TRUE(u256_geq(one, one));
  EXPECT_TRUE(u256_geq(one, zero));
}

TEST(U256, BitAccess) {
  U256 v{0b1010};
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_EQ(v.bit_length(), 4u);
  U256 high{0, 0, 0, 1};
  EXPECT_TRUE(high.bit(192));
  EXPECT_EQ(high.bit_length(), 193u);
}

TEST(U256, AddSubRoundtrip) {
  std::mt19937_64 rng(1);
  for (int i = 0; i < 200; ++i) {
    U256 a{rng(), rng(), rng(), rng() >> 1};
    U256 b{rng(), rng(), rng(), rng() >> 1};
    U256 sum{}, back{};
    const std::uint64_t carry = u256_add(sum, a, b);
    EXPECT_EQ(carry, 0u);
    const std::uint64_t borrow = u256_sub(back, sum, b);
    EXPECT_EQ(borrow, 0u);
    EXPECT_EQ(back, a);
  }
}

TEST(U256, SubUnderflowSetsBorrow) {
  U256 a{1};
  U256 b{2};
  U256 out{};
  EXPECT_EQ(u256_sub(out, a, b), 1u);
}

TEST(U256, AddCarryPropagates) {
  U256 a{~0ull, ~0ull, ~0ull, ~0ull};
  U256 out{};
  EXPECT_EQ(u256_add(out, a, U256{1}), 1u);
  EXPECT_TRUE(out.is_zero());
}

TEST(U256, MulWideSmall) {
  const auto r = u256_mul_wide(U256{7}, U256{6});
  EXPECT_EQ(r[0], 42u);
  for (std::size_t i = 1; i < 8; ++i) EXPECT_EQ(r[i], 0u);
}

TEST(U256, MulWideCross) {
  // (2^64)(2^64) = 2^128
  const auto r = u256_mul_wide(U256{0, 1, 0, 0}, U256{0, 1, 0, 0});
  EXPECT_EQ(r[2], 1u);
  EXPECT_EQ(r[0], 0u);
  EXPECT_EQ(r[1], 0u);
}

TEST(U256, Pow2kMod) {
  const U256 m{97};
  // 2^10 mod 97 = 1024 mod 97 = 54
  EXPECT_EQ(u256_pow2k_mod(10, m), U256{54});
  EXPECT_EQ(u256_pow2k_mod(0, m), U256{1});
}

TEST(U256, MontInv64KnownModuli) {
  // For odd m, m * mont_inv64(m) == -1 mod 2^64.
  for (const std::uint64_t m : {1ull, 3ull, 0x43e1f593f0000001ull,
                                0x3c208c16d87cfd47ull, ~0ull}) {
    EXPECT_EQ(static_cast<std::uint64_t>(m * mont_inv64(m)),
              static_cast<std::uint64_t>(-1))
        << m;
  }
}

TEST(U256, MontInv64Property) {
  std::mt19937_64 rng(2);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t m = rng() | 1;  // odd
    const std::uint64_t inv = mont_inv64(m);
    EXPECT_EQ(static_cast<std::uint64_t>(m * inv), static_cast<std::uint64_t>(-1));
  }
}

TEST(U256, DecimalRoundtrip) {
  const char* cases[] = {
      "0", "1", "42", "18446744073709551616",
      "21888242871839275222246405745257275088548364400416034343698204186575808"
      "495617"};
  for (const char* s : cases) {
    EXPECT_EQ(u256_to_dec(u256_from_dec(s)), s);
  }
}

TEST(U256, DecimalRejectsGarbage) {
  EXPECT_THROW(u256_from_dec("12a"), std::invalid_argument);
  EXPECT_THROW(u256_from_dec("-5"), std::invalid_argument);
}

TEST(U256, DecimalOverflowThrows) {
  const std::string too_big(100, '9');
  EXPECT_THROW(u256_from_dec(too_big), std::overflow_error);
}

TEST(U256, HexEncoding) {
  EXPECT_EQ(u256_to_hex(U256{0}), "0");
  EXPECT_EQ(u256_to_hex(U256{255}), "ff");
  EXPECT_EQ(u256_to_hex(U256{0, 1, 0, 0}), "10000000000000000");
}

TEST(U256, BytesRoundtrip) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 100; ++i) {
    const U256 v{rng(), rng(), rng(), rng()};
    EXPECT_EQ(u256_from_bytes(u256_to_bytes(v)), v);
  }
}

TEST(U256, BytesAreBigEndian) {
  const auto b = u256_to_bytes(U256{0x0102});
  EXPECT_EQ(b[31], 0x02);
  EXPECT_EQ(b[30], 0x01);
  EXPECT_EQ(b[0], 0x00);
}

}  // namespace
}  // namespace zkdet::ff
